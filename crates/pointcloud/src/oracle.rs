//! Incremental brute-force oracle: a uniform-grid cell index that answers
//! radius queries with results **bit-identical** to
//! [`radius_search_bruteforce`](crate::radius_search_bruteforce), built
//! once per frame stream and *patched* across temporally coherent frames.
//!
//! The sweep explorer solves every scenario's exact neighbor sets up
//! front (the recall oracle). Re-running the naive `O(n · q)` scan per
//! frame dominates that setup, yet nothing about the oracle's *answer*
//! needs a full re-solve: the grid bins each point once, so a query only
//! scans the cells overlapping its search ball, and a frame that is a
//! rigid translation of the indexed one needs no new grid at all — the
//! query shifts into the index's base space instead
//! ([`OracleIndex::advance`]).
//!
//! # Honesty rules (mirroring refit's)
//!
//! The patch path mirrors the validation discipline of
//! `crescent_kdtree`'s refit: it is taken **only** when every point of
//! the new frame is *exactly* `base[i] + offset` (float equality,
//! per coordinate), so the candidate filter can reconstruct each current
//! position bit-exactly as `base[i] + offset` and squared distances come
//! out identical to the naive scan. Anything else — a size change, per
//! point noise, any non-rigid motion — falls back to a fresh
//! [`OracleIndex::build`] over the new cloud. Incoherence costs build
//! time, never correctness.
//!
//! # Exactness
//!
//! The grid is only a *candidate* filter and is deliberately
//! conservative (cells are clamped to at least the search radius, the
//! query window is widened by one cell plus an epsilon slack absorbing
//! the base-space transform's rounding); the exact `d² ≤ r²` test and
//! the `(d², index)` sort do the rest, reproducing the naive scan's
//! stable order — including [`Option<usize>`] truncation — bit for bit.
//! `tests/oracle_properties.rs` asserts the equality on every canonical
//! stream scenario and on fuzzed `testgen` streams.

use crate::bruteforce::Neighbor;
use crate::cloud::PointCloud;
use crate::point::Point3;

/// How [`OracleIndex::advance`] absorbed a new frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleAdvance {
    /// The frame is an exact rigid translation of the indexed cloud; the
    /// grid was kept and only the query-space offset changed.
    Patched,
    /// The frame was not order-preserving (size change, noise, non-rigid
    /// motion); the index was rebuilt from scratch.
    Rebuilt,
}

/// A uniform-grid radius-query index over one point cloud, with answers
/// bit-identical to [`radius_search_bruteforce`](crate::radius_search_bruteforce)
/// at the radius fixed at build time.
///
/// # Examples
///
/// ```
/// use crescent_pointcloud::{radius_search_bruteforce, OracleIndex, Point3, PointCloud};
///
/// let cloud: PointCloud = (0..64).map(|i| Point3::new(i as f32 * 0.1, 0.0, 0.0)).collect();
/// let oracle = OracleIndex::build(&cloud, 0.25);
/// let q = Point3::new(1.0, 0.0, 0.0);
/// assert_eq!(
///     oracle.radius_search(q, Some(8)),
///     radius_search_bruteforce(&cloud, q, 0.25, Some(8)),
/// );
/// ```
#[derive(Clone, Debug)]
pub struct OracleIndex {
    /// The indexed cloud, in the grid's own coordinate space.
    base: Vec<Point3>,
    /// Rigid translation from base space to the current frame:
    /// `current[i] == base[i] + offset`, bit-exact (enforced by
    /// [`OracleIndex::advance`]).
    offset: Point3,
    /// Search radius the index serves (fixes the cell size).
    radius: f32,
    /// Minimum corner of the base cloud's bounding box.
    origin: Point3,
    /// Per-axis cell width (always positive).
    cell: Point3,
    /// Grid dimensions (each at least 1).
    dims: [usize; 3],
    /// CSR cell starts: cell `f` holds `items[starts[f]..starts[f + 1]]`.
    starts: Vec<u32>,
    /// Point indices, bucketed by cell.
    items: Vec<u32>,
    /// Largest absolute base coordinate, for the float-slack bound.
    scale: f32,
}

impl OracleIndex {
    /// Builds the grid index over `cloud` for queries at `radius`.
    ///
    /// Cost is `O(n)` plus the cell array (capped near `4 n` cells, so a
    /// degenerate radius cannot blow up memory).
    ///
    /// # Panics
    ///
    /// Panics if the cloud has more than `u32::MAX` points.
    pub fn build(cloud: &PointCloud, radius: f32) -> Self {
        let base: Vec<Point3> = cloud.points().to_vec();
        let n = base.len();
        assert!(n <= u32::MAX as usize, "oracle index caps at u32 point ids");
        let r = radius.abs();

        let mut origin = Point3::splat(f32::INFINITY);
        let mut top = Point3::splat(f32::NEG_INFINITY);
        let mut scale = 0.0f32;
        for p in &base {
            origin = origin.min(*p);
            top = top.max(*p);
            scale = scale.max(p.x.abs()).max(p.y.abs()).max(p.z.abs());
        }
        if n == 0 {
            origin = Point3::ZERO;
            top = Point3::ZERO;
        }
        let extent = top - origin;

        // Cap the cell count near 4 n: a tiny radius over a large scene
        // must widen the cells, not explode the array. Non-finite clouds
        // collapse to one cell (the scan degenerates to brute force).
        let max_axis = (((4 * n.max(1)) as f64).cbrt().ceil() as usize).max(1);
        let degenerate = !origin.is_finite() || !extent.is_finite();
        let mut dims = [1usize; 3];
        let mut cell = Point3::splat(1.0);
        for (a, dim) in dims.iter_mut().enumerate() {
            let e = extent.coord(a);
            let want = if r > 0.0 && !degenerate { (e / r).ceil() as usize } else { 1 };
            *dim = want.clamp(1, max_axis);
            let w = if e > 0.0 && !degenerate { e / *dim as f32 } else { 1.0 };
            cell = cell.with_coord(a, w.max(f32::MIN_POSITIVE));
        }

        let mut this = OracleIndex {
            base,
            offset: Point3::ZERO,
            radius,
            origin,
            cell,
            dims,
            starts: Vec::new(),
            items: Vec::new(),
            scale,
        };
        let num_cells = dims[0] * dims[1] * dims[2];
        let mut starts = vec![0u32; num_cells + 1];
        for p in &this.base {
            starts[this.flat(this.cell_of(*p)) + 1] += 1;
        }
        for f in 0..num_cells {
            starts[f + 1] += starts[f];
        }
        let mut cursor = starts.clone();
        let mut items = vec![0u32; n];
        for (i, p) in this.base.iter().enumerate() {
            let f = this.flat(this.cell_of(*p));
            items[cursor[f] as usize] = i as u32;
            cursor[f] += 1;
        }
        this.starts = starts;
        this.items = items;
        this
    }

    /// Absorbs the next frame of a stream.
    ///
    /// If `cloud` is an exact rigid translation of the indexed base cloud
    /// (every point satisfies `base[i] + off == cloud[i]` for one shared
    /// `off`, float-exact), the grid is kept and only the query offset
    /// changes — `O(n)` verification, no allocation. Otherwise the index
    /// is rebuilt over `cloud` (see the module docs' honesty rules).
    pub fn advance(&mut self, cloud: &PointCloud) -> OracleAdvance {
        let pts = cloud.points();
        if pts.len() != self.base.len() {
            *self = OracleIndex::build(cloud, self.radius);
            return OracleAdvance::Rebuilt;
        }
        if pts.is_empty() {
            self.offset = Point3::ZERO;
            return OracleAdvance::Patched;
        }
        let off = pts[0] - self.base[0];
        let rigid = pts.iter().zip(&self.base).all(|(p, b)| *b + off == *p);
        if rigid {
            self.offset = off;
            OracleAdvance::Patched
        } else {
            *self = OracleIndex::build(cloud, self.radius);
            OracleAdvance::Rebuilt
        }
    }

    /// The radius this index answers queries at.
    pub fn radius(&self) -> f32 {
        self.radius
    }

    /// Current base-to-frame translation (zero right after a build).
    pub fn offset(&self) -> Point3 {
        self.offset
    }

    /// Radius query against the current frame, bit-identical to
    /// [`radius_search_bruteforce`](crate::radius_search_bruteforce) on
    /// that frame at the build radius.
    pub fn radius_search(&self, query: Point3, max_neighbors: Option<usize>) -> Vec<Neighbor> {
        let mut out = Vec::new();
        self.radius_search_into(query, max_neighbors, &mut out);
        out
    }

    /// [`OracleIndex::radius_search`] writing into a caller-owned buffer
    /// (cleared and refilled), recycling its allocation across queries.
    pub fn radius_search_into(
        &self,
        query: Point3,
        max_neighbors: Option<usize>,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        if self.base.is_empty() {
            return;
        }
        let r = self.radius.abs();
        let r2 = self.radius * self.radius;
        // Query in base space: the grid never moved, the query does. The
        // transform rounds (`query − offset` is one f32 subtraction per
        // axis), so the window gets an epsilon slack proportional to the
        // coordinate magnitudes plus a whole-cell margin; over-coverage
        // is harmless — the exact d² filter below decides membership.
        let qb = query - self.offset;
        let q_scale = query.x.abs().max(query.y.abs()).max(query.z.abs());
        let off_scale = self.offset.x.abs().max(self.offset.y.abs()).max(self.offset.z.abs());
        let slack = (self.scale + q_scale + off_scale + r) * f32::EPSILON * 8.0;
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for a in 0..3 {
            let w = self.cell.coord(a);
            let lof = (qb.coord(a) - r - slack - self.origin.coord(a)) / w;
            let hif = (qb.coord(a) + r + slack - self.origin.coord(a)) / w;
            lo[a] = ((lof as isize) - 1).max(0) as usize;
            hi[a] = match (((hif as isize) + 1).max(0) as usize).min(self.dims[a] - 1) {
                h if h >= lo[a] => h,
                _ => return, // search ball entirely outside the grid
            };
        }
        for cx in lo[0]..=hi[0] {
            for cy in lo[1]..=hi[1] {
                for cz in lo[2]..=hi[2] {
                    let f = self.flat([cx, cy, cz]);
                    for &i in &self.items[self.starts[f] as usize..self.starts[f + 1] as usize] {
                        // bit-exact current position (advance() verified it)
                        let p = self.base[i as usize] + self.offset;
                        let d2 = p.dist2(query);
                        if d2 <= r2 {
                            out.push(Neighbor { index: i as usize, dist2: d2 });
                        }
                    }
                }
            }
        }
        // The naive scan visits points in index order and sorts stably by
        // d² alone; candidates here arrive in cell order, so sorting by
        // (d², index) restores the identical total order (NaN is already
        // excluded by the filter).
        out.sort_unstable_by(|a, b| {
            a.dist2
                .partial_cmp(&b.dist2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        if let Some(k) = max_neighbors {
            out.truncate(k);
        }
    }

    fn cell_of(&self, p: Point3) -> [usize; 3] {
        let mut c = [0usize; 3];
        for (a, slot) in c.iter_mut().enumerate() {
            let f = (p.coord(a) - self.origin.coord(a)) / self.cell.coord(a);
            // saturating casts: negatives and NaN land in cell 0
            *slot = (f as usize).min(self.dims[a] - 1);
        }
        c
    }

    fn flat(&self, c: [usize; 3]) -> usize {
        (c[0] * self.dims[1] + c[1]) * self.dims[2] + c[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::radius_search_bruteforce;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64, spread: f32) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * spread,
                    rng.random::<f32>() * spread,
                    rng.random::<f32>() * spread,
                )
            })
            .collect()
    }

    fn assert_matches_naive(cloud: &PointCloud, oracle: &OracleIndex, radius: f32, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for k in [None, Some(1), Some(7)] {
            for _ in 0..40 {
                let q = Point3::new(
                    rng.random::<f32>() * 5.0 - 1.0,
                    rng.random::<f32>() * 5.0 - 1.0,
                    rng.random::<f32>() * 5.0 - 1.0,
                );
                assert_eq!(
                    oracle.radius_search(q, k),
                    radius_search_bruteforce(cloud, q, radius, k),
                    "query {q} cap {k:?}"
                );
            }
        }
    }

    #[test]
    fn fresh_index_matches_bruteforce_bit_for_bit() {
        for (n, radius) in [(1usize, 0.5f32), (64, 0.3), (700, 0.25), (700, 3.0)] {
            let cloud = random_cloud(n, n as u64, 3.0);
            let oracle = OracleIndex::build(&cloud, radius);
            assert_matches_naive(&cloud, &oracle, radius, 99 + n as u64);
        }
    }

    /// A cloud on the 1/64 grid: adding a dyadic drift of moderate
    /// magnitude is then float-exact, so the stream is *exactly* rigid —
    /// the regime the patch path serves.
    fn quantized_cloud(n: usize, seed: u64, spread: f32) -> PointCloud {
        random_cloud(n, seed, spread)
            .iter()
            .map(|p| {
                Point3::new(
                    (p.x * 64.0).round() / 64.0,
                    (p.y * 64.0).round() / 64.0,
                    (p.z * 64.0).round() / 64.0,
                )
            })
            .collect()
    }

    #[test]
    fn rigid_translation_patches_instead_of_rebuilding() {
        let base = quantized_cloud(500, 3, 3.0);
        let mut oracle = OracleIndex::build(&base, 0.4);
        let drift = Point3::new(0.125, -0.0625, 0.25);
        let mut cur = base.clone();
        for step in 0..4 {
            cur = cur.iter().map(|&p| p + drift).collect();
            assert_eq!(oracle.advance(&cur), OracleAdvance::Patched, "step {step}");
            assert_matches_naive(&cur, &oracle, 0.4, 40 + step);
        }
        assert_ne!(oracle.offset(), Point3::ZERO);
    }

    #[test]
    fn noise_and_size_changes_force_a_rebuild() {
        let base = random_cloud(300, 5, 3.0);
        let mut oracle = OracleIndex::build(&base, 0.4);

        let mut pts = base.points().to_vec();
        pts[137].y += 1e-3; // one point off the rigid motion
        let noisy: PointCloud = pts.into_iter().collect();
        assert_eq!(oracle.advance(&noisy), OracleAdvance::Rebuilt);
        assert_matches_naive(&noisy, &oracle, 0.4, 51);

        let shrunk = random_cloud(120, 6, 3.0);
        assert_eq!(oracle.advance(&shrunk), OracleAdvance::Rebuilt);
        assert_matches_naive(&shrunk, &oracle, 0.4, 52);
    }

    #[test]
    fn degenerate_clouds_and_radii() {
        let empty = PointCloud::new();
        let mut oracle = OracleIndex::build(&empty, 0.5);
        assert!(oracle.radius_search(Point3::ZERO, None).is_empty());
        assert_eq!(oracle.advance(&empty), OracleAdvance::Patched);

        // all points coincident: zero extent, one cell
        let pile: PointCloud = (0..32).map(|_| Point3::splat(1.5)).collect();
        let oracle = OracleIndex::build(&pile, 0.25);
        assert_eq!(oracle.radius_search(Point3::splat(1.5), None).len(), 32);
        assert_matches_naive(&pile, &oracle, 0.25, 60);

        // zero radius still matches exact coincidences (d² = 0 ≤ 0)
        let cloud = random_cloud(50, 7, 2.0);
        let oracle = OracleIndex::build(&cloud, 0.0);
        let q = cloud.point(17);
        assert_eq!(oracle.radius_search(q, None), radius_search_bruteforce(&cloud, q, 0.0, None));

        // tiny radius over a big scene: the per-axis cell cap must hold
        // memory near ceil(cbrt(4 n))^3 cells
        let wide = random_cloud(200, 8, 500.0);
        let oracle = OracleIndex::build(&wide, 1e-4);
        let cap = ((4.0 * 200.0f64).cbrt().ceil() as usize).pow(3);
        assert!(oracle.starts.len() <= cap + 1, "{} cells", oracle.starts.len());
        assert_matches_naive(&wide, &oracle, 1e-4, 61);
    }

    #[test]
    fn large_coordinate_offsets_stay_exact() {
        // a rigid shift far from the origin stresses the float slack:
        // base-space queries round hardest when coordinates are big
        let base = random_cloud(400, 9, 4.0);
        let mut oracle = OracleIndex::build(&base, 0.5);
        let shifted: PointCloud =
            base.iter().map(|&p| p + Point3::new(8192.0, -4096.0, 2048.0)).collect();
        assert_eq!(oracle.advance(&shifted), OracleAdvance::Patched);
        let mut rng = StdRng::seed_from_u64(70);
        for _ in 0..60 {
            let jitter = Point3::new(
                rng.random::<f32>() * 6.0 - 1.0,
                rng.random::<f32>() * 6.0 - 1.0,
                rng.random::<f32>() * 6.0 - 1.0,
            );
            let q = shifted.point(rng.random_range(0..shifted.len())) + jitter * 0.1;
            assert_eq!(
                oracle.radius_search(q, Some(9)),
                radius_search_bruteforce(&shifted, q, 0.5, Some(9)),
            );
        }
    }
}
