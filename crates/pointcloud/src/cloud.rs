//! Point-cloud container.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::point::{Aabb, Point3};

/// A collection of points in 3D space, the unit of input to every Crescent
/// pipeline stage.
///
/// A `PointCloud` is conceptually a `Vec<Point3>`; it additionally caches
/// convenience geometry (bounds) and supports the normalizations used by the
/// evaluation datasets.
///
/// # Examples
///
/// ```
/// use crescent_pointcloud::{Point3, PointCloud};
///
/// let cloud: PointCloud = [Point3::ZERO, Point3::splat(1.0)].into_iter().collect();
/// assert_eq!(cloud.len(), 2);
/// assert_eq!(cloud.bounds().size(), Point3::splat(1.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PointCloud {
    points: Vec<Point3>,
}

impl PointCloud {
    /// Creates an empty point cloud.
    pub fn new() -> Self {
        PointCloud { points: Vec::new() }
    }

    /// Creates a point cloud from a vector of points.
    pub fn from_points(points: Vec<Point3>) -> Self {
        PointCloud { points }
    }

    /// Creates an empty cloud with capacity for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        PointCloud { points: Vec::with_capacity(n) }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the cloud has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points as a slice.
    #[inline]
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// The point at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn point(&self, idx: usize) -> Point3 {
        self.points[idx]
    }

    /// Appends a point.
    #[inline]
    pub fn push(&mut self, p: Point3) {
        self.points.push(p);
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point3> {
        self.points.iter()
    }

    /// Consumes the cloud and returns the underlying point vector.
    pub fn into_points(self) -> Vec<Point3> {
        self.points
    }

    /// The tightest axis-aligned bounding box of the cloud.
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(self.points.iter().copied())
    }

    /// Arithmetic-mean centroid, or the origin for an empty cloud.
    pub fn centroid(&self) -> Point3 {
        if self.points.is_empty() {
            return Point3::ZERO;
        }
        let sum = self.points.iter().copied().fold(Point3::ZERO, |a, p| a + p);
        sum / self.points.len() as f32
    }

    /// Translates every point by `delta`.
    pub fn translate(&mut self, delta: Point3) {
        for p in &mut self.points {
            *p += delta;
        }
    }

    /// Scales every point about the origin.
    pub fn scale(&mut self, factor: f32) {
        for p in &mut self.points {
            *p = *p * factor;
        }
    }

    /// Centers the cloud on the origin and scales it into the unit sphere,
    /// the canonical normalization of the ModelNet/ShapeNet evaluation
    /// pipelines.
    ///
    /// Returns the applied `(translation, scale)` so callers can invert it.
    pub fn normalize_unit_sphere(&mut self) -> (Point3, f32) {
        let c = self.centroid();
        self.translate(-c);
        let max_norm = self.points.iter().map(|p| p.norm()).fold(0.0_f32, f32::max);
        let s = if max_norm > 0.0 { 1.0 / max_norm } else { 1.0 };
        self.scale(s);
        (-c, s)
    }

    /// Returns the total payload size in bytes assuming the accelerator's
    /// 12-byte (3 × f32) point representation.
    ///
    /// Used by the DRAM-traffic experiments to compute the "theoretical
    /// minimum" traffic of Fig 3 (each point and query read once).
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.points.len() * POINT_BYTES
    }
}

/// Size of one point in the accelerator's memory layout (3 × f32).
pub const POINT_BYTES: usize = 12;

impl fmt::Display for PointCloud {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PointCloud({} points)", self.len())
    }
}

impl FromIterator<Point3> for PointCloud {
    fn from_iter<I: IntoIterator<Item = Point3>>(iter: I) -> Self {
        PointCloud { points: iter.into_iter().collect() }
    }
}

impl Extend<Point3> for PointCloud {
    fn extend<I: IntoIterator<Item = Point3>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

impl From<Vec<Point3>> for PointCloud {
    fn from(points: Vec<Point3>) -> Self {
        PointCloud { points }
    }
}

impl<'a> IntoIterator for &'a PointCloud {
    type Item = &'a Point3;
    type IntoIter = std::slice::Iter<'a, Point3>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl IntoIterator for PointCloud {
    type Item = Point3;
    type IntoIter = std::vec::IntoIter<Point3>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointCloud {
        PointCloud::from_points(vec![
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(-1.0, 0.0, 0.0),
            Point3::new(0.0, 2.0, 0.0),
            Point3::new(0.0, -2.0, 0.0),
        ])
    }

    #[test]
    fn len_and_access() {
        let c = sample();
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.point(2), Point3::new(0.0, 2.0, 0.0));
        assert_eq!(c.points().len(), 4);
    }

    #[test]
    fn centroid_and_bounds() {
        let c = sample();
        assert_eq!(c.centroid(), Point3::ZERO);
        let b = c.bounds();
        assert_eq!(b.min, Point3::new(-1.0, -2.0, 0.0));
        assert_eq!(b.max, Point3::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn empty_cloud_behaviour() {
        let c = PointCloud::new();
        assert!(c.is_empty());
        assert_eq!(c.centroid(), Point3::ZERO);
        assert_eq!(c.payload_bytes(), 0);
    }

    #[test]
    fn translate_scale() {
        let mut c = sample();
        c.translate(Point3::splat(1.0));
        assert_eq!(c.centroid(), Point3::splat(1.0));
        c.scale(2.0);
        assert_eq!(c.centroid(), Point3::splat(2.0));
    }

    #[test]
    fn normalize_unit_sphere_bounds_all_points() {
        let mut c = sample();
        c.translate(Point3::new(5.0, -3.0, 2.0));
        c.normalize_unit_sphere();
        assert!(c.centroid().norm() < 1e-6);
        for p in &c {
            assert!(p.norm() <= 1.0 + 1e-6);
        }
        // at least one point lands exactly on the sphere
        let max = c.iter().map(|p| p.norm()).fold(0.0_f32, f32::max);
        assert!((max - 1.0).abs() < 1e-6);
    }

    #[test]
    fn collect_and_extend() {
        let mut c: PointCloud = (0..3).map(|i| Point3::splat(i as f32)).collect();
        c.extend([Point3::splat(9.0)]);
        assert_eq!(c.len(), 4);
        let pts = c.into_points();
        assert_eq!(pts[3], Point3::splat(9.0));
    }

    #[test]
    fn payload_bytes_matches_layout() {
        assert_eq!(sample().payload_bytes(), 4 * 12);
    }
}
