//! 3D point and axis-aligned bounding-box primitives.
//!
//! Everything in the Crescent pipeline — K-d tree construction, neighbor
//! search, dataset generation — operates on [`Point3`]. The type is a plain
//! `f32` triple in the C-struct spirit (public fields, `Copy`), matching the
//! paper's `[x, y, z]` representation (Sec 2.1).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// Number of spatial dimensions of a point cloud.
pub const DIMS: usize = 3;

/// A point (or vector) in 3D space.
///
/// # Examples
///
/// ```
/// use crescent_pointcloud::Point3;
///
/// let p = Point3::new(1.0, 2.0, 2.0);
/// assert_eq!(p.norm(), 3.0);
/// assert_eq!(p[1], 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point3 {
    /// Coordinate along the first split axis.
    pub x: f32,
    /// Coordinate along the second split axis.
    pub y: f32,
    /// Coordinate along the third split axis.
    pub z: f32,
}

impl Point3 {
    /// The origin, `(0, 0, 0)`.
    pub const ZERO: Point3 = Point3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a point from its three coordinates.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Point3 { x, y, z }
    }

    /// Creates a point with all three coordinates equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Point3 { x: v, y: v, z: v }
    }

    /// Returns the coordinate along `axis` (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `axis >= 3`.
    #[inline]
    pub fn coord(&self, axis: usize) -> f32 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis {axis} out of range for Point3"),
        }
    }

    /// Replaces the coordinate along `axis` and returns the new point.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= 3`.
    #[inline]
    pub fn with_coord(mut self, axis: usize, v: f32) -> Self {
        match axis {
            0 => self.x = v,
            1 => self.y = v,
            2 => self.z = v,
            _ => panic!("axis {axis} out of range for Point3"),
        }
        self
    }

    /// Dot product with another point interpreted as a vector.
    #[inline]
    pub fn dot(&self, rhs: Point3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(&self) -> f32 {
        self.dot(*self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f32 {
        self.norm2().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// This is the distance computed by the PE's CD (calculate-distance)
    /// pipeline stage; the square root is never materialized in hardware.
    #[inline]
    pub fn dist2(&self, other: Point3) -> f32 {
        (*self - other).norm2()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point3) -> f32 {
        self.dist2(other).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: Point3) -> Point3 {
        Point3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: Point3) -> Point3 {
        Point3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Returns the unit vector pointing in the same direction, or zero if
    /// the norm is zero.
    #[inline]
    pub fn normalized(&self) -> Point3 {
        let n = self.norm();
        if n == 0.0 {
            Point3::ZERO
        } else {
            *self / n
        }
    }

    /// Rotates the point around the z (up) axis by `angle` radians.
    ///
    /// Used for dataset augmentation, matching the standard azimuthal
    /// rotation augmentation of PointNet++-style training.
    #[inline]
    pub fn rotated_z(&self, angle: f32) -> Point3 {
        let (s, c) = angle.sin_cos();
        Point3::new(c * self.x - s * self.y, s * self.x + c * self.y, self.z)
    }

    /// Returns the point as a `[x, y, z]` array.
    #[inline]
    pub fn to_array(self) -> [f32; DIMS] {
        [self.x, self.y, self.z]
    }

    /// Returns true if all coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<[f32; DIMS]> for Point3 {
    #[inline]
    fn from(a: [f32; DIMS]) -> Self {
        Point3::new(a[0], a[1], a[2])
    }
}

impl From<Point3> for [f32; DIMS] {
    #[inline]
    fn from(p: Point3) -> Self {
        p.to_array()
    }
}

impl Index<usize> for Point3 {
    type Output = f32;

    #[inline]
    fn index(&self, axis: usize) -> &f32 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis {axis} out of range for Point3"),
        }
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Point3 {
    #[inline]
    fn add_assign(&mut self, rhs: Point3) {
        *self = *self + rhs;
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    #[inline]
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f32> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, rhs: f32) -> Point3 {
        Point3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f32> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, rhs: f32) -> Point3 {
        Point3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

/// An axis-aligned bounding box.
///
/// Used for K-d tree space subdivision and for box-IoU in the detection
/// task (F-PointNet evaluation metric).
///
/// # Examples
///
/// ```
/// use crescent_pointcloud::{Aabb, Point3};
///
/// let b = Aabb::new(Point3::ZERO, Point3::splat(2.0));
/// assert!(b.contains(Point3::splat(1.0)));
/// assert_eq!(b.volume(), 8.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Point3,
    /// Maximum corner.
    pub max: Point3,
}

impl Aabb {
    /// An empty box (inverted infinite bounds); grows via [`Aabb::expand`].
    pub const EMPTY: Aabb = Aabb {
        min: Point3 { x: f32::INFINITY, y: f32::INFINITY, z: f32::INFINITY },
        max: Point3 { x: f32::NEG_INFINITY, y: f32::NEG_INFINITY, z: f32::NEG_INFINITY },
    };

    /// Creates a box from its two corners.
    ///
    /// # Panics
    ///
    /// Panics if any `min` coordinate exceeds the corresponding `max`.
    pub fn new(min: Point3, max: Point3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "invalid Aabb: min {min} exceeds max {max}"
        );
        Aabb { min, max }
    }

    /// Creates a box centered at `center` with the given `size` per axis.
    pub fn from_center_size(center: Point3, size: Point3) -> Self {
        let half = size / 2.0;
        Aabb::new(center - half, center + half)
    }

    /// The tightest box containing every point of `points`.
    ///
    /// Returns [`Aabb::EMPTY`] for an empty input.
    pub fn from_points<I: IntoIterator<Item = Point3>>(points: I) -> Self {
        let mut b = Aabb::EMPTY;
        for p in points {
            b.expand(p);
        }
        b
    }

    /// Grows the box to contain `p`.
    #[inline]
    pub fn expand(&mut self, p: Point3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Whether the box contains `p` (inclusive on all faces).
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Box center.
    #[inline]
    pub fn center(&self) -> Point3 {
        (self.min + self.max) / 2.0
    }

    /// Per-axis extent.
    #[inline]
    pub fn size(&self) -> Point3 {
        self.max - self.min
    }

    /// Volume; zero for degenerate or empty boxes.
    #[inline]
    pub fn volume(&self) -> f32 {
        let s = self.size();
        if s.x < 0.0 || s.y < 0.0 || s.z < 0.0 {
            0.0
        } else {
            s.x * s.y * s.z
        }
    }

    /// Intersection of two boxes; empty/degenerate boxes yield zero volume.
    pub fn intersection(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.max(other.min), max: self.max.min(other.max) }
    }

    /// Intersection-over-union with another box.
    ///
    /// This is the detection-accuracy metric of the F-PointNet evaluation
    /// (Sec 6, "geometric mean of the IoU metric on the car class").
    pub fn iou(&self, other: &Aabb) -> f32 {
        let inter = self.intersection(other).volume();
        let union = self.volume() + other.volume() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Squared distance from `p` to the box (zero if inside).
    ///
    /// The K-d tree backtracking test compares this against the squared
    /// search radius to prune half-spaces (Sec 2.2).
    pub fn dist2_to(&self, p: Point3) -> f32 {
        let mut d2 = 0.0;
        for axis in 0..DIMS {
            let v = p.coord(axis);
            let lo = self.min.coord(axis);
            let hi = self.max.coord(axis);
            let d = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            d2 += d * d;
        }
        d2
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::EMPTY
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Point3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Point3::splat(3.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Point3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn point_dot_and_norm() {
        let a = Point3::new(1.0, 2.0, 2.0);
        assert_eq!(a.dot(a), 9.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.dist2(Point3::ZERO), 9.0);
        assert_eq!(a.dist(Point3::ZERO), 3.0);
    }

    #[test]
    fn point_coord_access() {
        let p = Point3::new(7.0, 8.0, 9.0);
        for axis in 0..DIMS {
            assert_eq!(p.coord(axis), p[axis]);
        }
        assert_eq!(p.with_coord(1, 0.5).y, 0.5);
        assert_eq!(p.to_array(), [7.0, 8.0, 9.0]);
        assert_eq!(Point3::from([7.0, 8.0, 9.0]), p);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_coord_out_of_range_panics() {
        let _ = Point3::ZERO.coord(3);
    }

    #[test]
    fn point_normalized() {
        let p = Point3::new(3.0, 0.0, 4.0);
        let n = p.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-6);
        assert_eq!(Point3::ZERO.normalized(), Point3::ZERO);
    }

    #[test]
    fn point_rotation_preserves_norm_and_z() {
        let p = Point3::new(1.0, 2.0, 3.0);
        let r = p.rotated_z(1.3);
        assert!((r.norm() - p.norm()).abs() < 1e-5);
        assert_eq!(r.z, p.z);
    }

    #[test]
    fn aabb_contains_and_volume() {
        let b = Aabb::new(Point3::ZERO, Point3::new(1.0, 2.0, 3.0));
        assert!(b.contains(Point3::new(0.5, 1.0, 2.9)));
        assert!(!b.contains(Point3::new(1.5, 1.0, 1.0)));
        assert_eq!(b.volume(), 6.0);
        assert_eq!(b.center(), Point3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn aabb_from_points() {
        let pts = [Point3::new(-1.0, 0.0, 2.0), Point3::new(1.0, -3.0, 0.0)];
        let b = Aabb::from_points(pts);
        assert_eq!(b.min, Point3::new(-1.0, -3.0, 0.0));
        assert_eq!(b.max, Point3::new(1.0, 0.0, 2.0));
        assert_eq!(Aabb::from_points([]).volume(), 0.0);
    }

    #[test]
    fn aabb_iou() {
        let a = Aabb::new(Point3::ZERO, Point3::splat(2.0));
        let b = Aabb::new(Point3::splat(1.0), Point3::splat(3.0));
        // intersection volume 1, union 8 + 8 - 1 = 15
        assert!((a.iou(&b) - 1.0 / 15.0).abs() < 1e-6);
        assert_eq!(a.iou(&a), 1.0);
        let far = Aabb::new(Point3::splat(10.0), Point3::splat(11.0));
        assert_eq!(a.iou(&far), 0.0);
    }

    #[test]
    fn aabb_dist2() {
        let b = Aabb::new(Point3::ZERO, Point3::splat(1.0));
        assert_eq!(b.dist2_to(Point3::splat(0.5)), 0.0);
        assert_eq!(b.dist2_to(Point3::new(2.0, 0.5, 0.5)), 1.0);
        assert_eq!(b.dist2_to(Point3::new(2.0, 2.0, 0.5)), 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid Aabb")]
    fn aabb_invalid_panics() {
        let _ = Aabb::new(Point3::splat(1.0), Point3::ZERO);
    }

    #[test]
    fn aabb_from_center_size() {
        let b = Aabb::from_center_size(Point3::splat(1.0), Point3::splat(2.0));
        assert_eq!(b.min, Point3::ZERO);
        assert_eq!(b.max, Point3::splat(2.0));
    }
}
