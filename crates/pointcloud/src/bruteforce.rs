//! Brute-force (exhaustive) neighbor search.
//!
//! This is the correctness reference for every tree-based search in the
//! workspace, and also the search strategy that Tigris and QuickNN apply
//! *within* their sub-trees (Sec 3.4) — so the baseline accelerators reuse
//! it for their search-load accounting.

use crate::cloud::PointCloud;
use crate::point::Point3;

/// Result of a neighbor query: index into the searched cloud plus squared
/// distance to the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbor in the searched point cloud.
    pub index: usize,
    /// Squared Euclidean distance from the query.
    pub dist2: f32,
}

/// Returns all points of `cloud` within `radius` of `query`, sorted by
/// ascending distance, capped at `max_neighbors` if `Some`.
///
/// # Examples
///
/// ```
/// use crescent_pointcloud::{radius_search_bruteforce, Point3, PointCloud};
///
/// let cloud: PointCloud = (0..5).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
/// let hits = radius_search_bruteforce(&cloud, Point3::ZERO, 1.5, None);
/// assert_eq!(hits.len(), 2); // points at x = 0 and x = 1
/// assert_eq!(hits[0].index, 0);
/// ```
pub fn radius_search_bruteforce(
    cloud: &PointCloud,
    query: Point3,
    radius: f32,
    max_neighbors: Option<usize>,
) -> Vec<Neighbor> {
    let mut hits = Vec::new();
    radius_search_bruteforce_into(cloud, query, radius, max_neighbors, &mut hits);
    hits
}

/// [`radius_search_bruteforce`] writing into a caller-owned buffer, for
/// hot loops that issue many queries: `out` is cleared and refilled, so
/// its allocation is recycled query to query. Results are identical to
/// the allocating variant.
pub fn radius_search_bruteforce_into(
    cloud: &PointCloud,
    query: Point3,
    radius: f32,
    max_neighbors: Option<usize>,
    out: &mut Vec<Neighbor>,
) {
    out.clear();
    let r2 = radius * radius;
    for (i, p) in cloud.iter().enumerate() {
        let d2 = p.dist2(query);
        if d2 <= r2 {
            out.push(Neighbor { index: i, dist2: d2 });
        }
    }
    out.sort_by(|a, b| a.dist2.partial_cmp(&b.dist2).unwrap_or(std::cmp::Ordering::Equal));
    if let Some(k) = max_neighbors {
        out.truncate(k);
    }
}

/// Returns the `k` nearest points of `cloud` to `query`, ascending by
/// distance. Returns fewer if the cloud has fewer than `k` points.
pub fn knn_bruteforce(cloud: &PointCloud, query: Point3, k: usize) -> Vec<Neighbor> {
    let mut best = Vec::new();
    knn_bruteforce_into(cloud, query, k, &mut best);
    best
}

/// [`knn_bruteforce`] writing into a caller-owned buffer (cleared and
/// refilled), recycling its allocation across queries.
pub fn knn_bruteforce_into(cloud: &PointCloud, query: Point3, k: usize, out: &mut Vec<Neighbor>) {
    out.clear();
    out.extend(cloud.iter().enumerate().map(|(i, p)| Neighbor { index: i, dist2: p.dist2(query) }));
    out.sort_by(|a, b| a.dist2.partial_cmp(&b.dist2).unwrap_or(std::cmp::Ordering::Equal));
    out.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> PointCloud {
        let mut pts = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                pts.push(Point3::new(x as f32, y as f32, 0.0));
            }
        }
        PointCloud::from_points(pts)
    }

    #[test]
    fn radius_search_finds_exact_ball() {
        let c = grid();
        let hits = radius_search_bruteforce(&c, Point3::new(1.0, 1.0, 0.0), 1.0, None);
        // center + 4 axis neighbors
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].dist2, 0.0);
        for h in &hits {
            assert!(h.dist2 <= 1.0);
        }
    }

    #[test]
    fn radius_search_sorted_and_capped() {
        let c = grid();
        let hits = radius_search_bruteforce(&c, Point3::new(1.0, 1.0, 0.0), 2.0, Some(3));
        assert_eq!(hits.len(), 3);
        assert!(hits.windows(2).all(|w| w[0].dist2 <= w[1].dist2));
    }

    #[test]
    fn radius_search_empty_result() {
        let c = grid();
        let hits = radius_search_bruteforce(&c, Point3::splat(100.0), 1.0, None);
        assert!(hits.is_empty());
    }

    #[test]
    fn knn_returns_k_sorted() {
        let c = grid();
        let hits = knn_bruteforce(&c, Point3::new(0.2, 0.1, 0.0), 4);
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[0].index, 0);
        assert!(hits.windows(2).all(|w| w[0].dist2 <= w[1].dist2));
    }

    #[test]
    fn into_variants_recycle_and_match() {
        let c = grid();
        let mut buf = vec![Neighbor { index: 9, dist2: 9.0 }; 3]; // stale contents
        radius_search_bruteforce_into(&c, Point3::new(1.0, 1.0, 0.0), 2.0, Some(3), &mut buf);
        assert_eq!(buf, radius_search_bruteforce(&c, Point3::new(1.0, 1.0, 0.0), 2.0, Some(3)));
        knn_bruteforce_into(&c, Point3::new(0.2, 0.1, 0.0), 4, &mut buf);
        assert_eq!(buf, knn_bruteforce(&c, Point3::new(0.2, 0.1, 0.0), 4));
    }

    #[test]
    fn knn_small_cloud() {
        let c: PointCloud = [Point3::ZERO].into_iter().collect();
        assert_eq!(knn_bruteforce(&c, Point3::splat(1.0), 5).len(), 1);
        assert!(knn_bruteforce(&PointCloud::new(), Point3::ZERO, 3).is_empty());
    }
}
