//! Point-cloud sampling: farthest-point sampling and random subsampling.
//!
//! PointNet++-style set-abstraction layers pick their output centroids by
//! farthest-point sampling (FPS) over the input cloud; every network in the
//! Crescent evaluation uses it (Sec 2.1's "output point cloud").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cloud::PointCloud;
use crate::point::Point3;

/// Selects `n` point indices by farthest-point sampling.
///
/// The first pick is the point farthest from the centroid (deterministic, so
/// training and inference agree); each subsequent pick maximizes the minimum
/// distance to the already-picked set. If `n >= cloud.len()`, all indices
/// are returned in order.
///
/// # Examples
///
/// ```
/// use crescent_pointcloud::{farthest_point_sample, Point3, PointCloud};
///
/// let cloud: PointCloud = (0..8).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
/// let picks = farthest_point_sample(&cloud, 2);
/// // the two extreme points are the farthest-apart pair
/// assert!(picks.contains(&0) && picks.contains(&7));
/// ```
pub fn farthest_point_sample(cloud: &PointCloud, n: usize) -> Vec<usize> {
    let pts = cloud.points();
    if n >= pts.len() {
        return (0..pts.len()).collect();
    }
    if n == 0 || pts.is_empty() {
        return Vec::new();
    }

    let centroid = cloud.centroid();
    let first = pts
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.dist2(centroid).partial_cmp(&b.dist2(centroid)).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .expect("non-empty cloud");

    let mut picked = Vec::with_capacity(n);
    picked.push(first);
    let mut min_d2: Vec<f32> = pts.iter().map(|p| p.dist2(pts[first])).collect();

    while picked.len() < n {
        let (next, _) = min_d2
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty distances");
        picked.push(next);
        let np = pts[next];
        for (d, p) in min_d2.iter_mut().zip(pts) {
            let nd = p.dist2(np);
            if nd < *d {
                *d = nd;
            }
        }
    }
    picked
}

/// Returns the sampled sub-cloud (points, not indices) of
/// [`farthest_point_sample`].
pub fn farthest_point_subcloud(cloud: &PointCloud, n: usize) -> PointCloud {
    farthest_point_sample(cloud, n).into_iter().map(|i| cloud.point(i)).collect()
}

/// Uniformly subsamples `n` point indices without replacement, seeded for
/// reproducibility.
///
/// If `n >= cloud.len()`, all indices are returned.
pub fn random_sample(cloud: &PointCloud, n: usize, seed: u64) -> Vec<usize> {
    let len = cloud.len();
    if n >= len {
        return (0..len).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // partial Fisher-Yates: shuffle the first n slots
    let mut idx: Vec<usize> = (0..len).collect();
    for i in 0..n {
        let j = rng.random_range(i..len);
        idx.swap(i, j);
    }
    idx.truncate(n);
    idx
}

/// Pads or truncates an index list to exactly `k` entries by repeating the
/// last valid entry, mirroring the neighbor-replication convention of point
/// cloud networks when a search returns fewer than `k` neighbors
/// (Sec 4.2, "this replication strategy is commonly done in point cloud
/// network design").
///
/// Returns an empty vector if `neighbors` is empty and `fallback` is `None`;
/// with a `fallback` index the result always has `k` entries.
pub fn replicate_to_k(neighbors: &[usize], k: usize, fallback: Option<usize>) -> Vec<usize> {
    let mut out = Vec::with_capacity(k);
    out.extend(neighbors.iter().copied().take(k));
    let filler = out.last().copied().or(fallback);
    if let Some(f) = filler {
        while out.len() < k {
            out.push(f);
        }
    }
    out
}

/// Jitters every point with zero-mean Gaussian noise of the given standard
/// deviation (standard point-cloud training augmentation).
pub fn jitter(cloud: &mut PointCloud, sigma: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<Point3> = cloud
        .iter()
        .map(|p| {
            *p + Point3::new(
                gaussian(&mut rng) * sigma,
                gaussian(&mut rng) * sigma,
                gaussian(&mut rng) * sigma,
            )
        })
        .collect();
    *cloud = PointCloud::from_points(pts);
}

/// Draws a standard-normal sample via Box–Muller.
///
/// (The sanctioned dependency set does not include `rand_distr`.)
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-9);
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_cloud(n: usize) -> PointCloud {
        (0..n).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect()
    }

    #[test]
    fn fps_picks_extremes_first() {
        let c = line_cloud(10);
        let picks = farthest_point_sample(&c, 3);
        assert_eq!(picks.len(), 3);
        assert!(picks.contains(&0));
        assert!(picks.contains(&9));
    }

    #[test]
    fn fps_returns_all_when_n_large() {
        let c = line_cloud(4);
        assert_eq!(farthest_point_sample(&c, 10), vec![0, 1, 2, 3]);
    }

    #[test]
    fn fps_zero_and_empty() {
        assert!(farthest_point_sample(&line_cloud(4), 0).is_empty());
        assert!(farthest_point_sample(&PointCloud::new(), 3).is_empty());
    }

    #[test]
    fn fps_indices_unique() {
        let c = line_cloud(50);
        let picks = farthest_point_sample(&c, 20);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), picks.len());
    }

    #[test]
    fn fps_spreads_better_than_prefix() {
        // FPS min-pairwise-distance should beat taking the first n points
        let c = line_cloud(100);
        let picks = farthest_point_sample(&c, 5);
        let min_gap = |ids: &[usize]| {
            let mut m = f32::INFINITY;
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    m = m.min(c.point(a).dist(c.point(b)));
                }
            }
            m
        };
        assert!(min_gap(&picks) > min_gap(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn subcloud_matches_indices() {
        let c = line_cloud(10);
        let idx = farthest_point_sample(&c, 4);
        let sub = farthest_point_subcloud(&c, 4);
        for (pos, &i) in idx.iter().enumerate() {
            assert_eq!(sub.point(pos), c.point(i));
        }
    }

    #[test]
    fn random_sample_deterministic_and_unique() {
        let c = line_cloud(30);
        let a = random_sample(&c, 10, 7);
        let b = random_sample(&c, 10, 7);
        assert_eq!(a, b);
        let mut s = a.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
        assert_ne!(a, random_sample(&c, 10, 8));
    }

    #[test]
    fn replicate_pads_and_truncates() {
        assert_eq!(replicate_to_k(&[3, 5], 4, None), vec![3, 5, 5, 5]);
        assert_eq!(replicate_to_k(&[1, 2, 3, 4, 5], 3, None), vec![1, 2, 3]);
        assert_eq!(replicate_to_k(&[], 3, Some(9)), vec![9, 9, 9]);
        assert!(replicate_to_k(&[], 3, None).is_empty());
    }

    #[test]
    fn jitter_moves_points_slightly() {
        let mut c = line_cloud(20);
        let orig = c.clone();
        jitter(&mut c, 0.01, 3);
        let max_move = c.iter().zip(orig.iter()).map(|(a, b)| a.dist(*b)).fold(0.0_f32, f32::max);
        assert!(max_move > 0.0 && max_move < 0.2);
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
