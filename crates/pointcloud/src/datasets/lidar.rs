//! KITTI-like synthetic LiDAR scenes and frustum detection samples.
//!
//! Two consumers:
//!
//! * the **memory-characterization experiments** (Figs 2–4) need large
//!   outdoor-scale scenes — "a typical KITTI-constructed scene with about
//!   1.2 million points" (Sec 2.2) — with realistic spatial irregularity;
//!   [`LidarSceneConfig`] generates those (ground plane, car-like cuboids,
//!   poles, walls, clutter);
//! * the **F-PointNet accuracy experiments** (Fig 13) need a learnable
//!   detection task; [`DetectionDataset`] extracts frustum samples (points
//!   around one car plus background) labelled with a per-point car mask and
//!   the ground-truth box, evaluated by box IoU on the car class.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cloud::PointCloud;
use crate::datasets::shapes;
use crate::point::{Aabb, Point3};
use crate::sampling::gaussian;

/// Configuration for [`generate_scene`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LidarSceneConfig {
    /// Approximate total number of points in the scene.
    pub total_points: usize,
    /// Number of car-like objects.
    pub num_cars: usize,
    /// Number of pole-like objects (trees, signs).
    pub num_poles: usize,
    /// Number of wall segments (buildings).
    pub num_walls: usize,
    /// Half-extent of the scene in x and y (meters).
    pub half_extent: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LidarSceneConfig {
    fn default() -> Self {
        LidarSceneConfig {
            total_points: 120_000,
            num_cars: 12,
            num_poles: 24,
            num_walls: 6,
            half_extent: 40.0,
            seed: 0x1DAA,
        }
    }
}

impl LidarSceneConfig {
    /// The paper-scale configuration (~1.2 M points), used by the Fig 2/3
    /// trace experiments.
    pub fn paper_scale(seed: u64) -> Self {
        LidarSceneConfig {
            total_points: 1_200_000,
            num_cars: 40,
            num_poles: 80,
            num_walls: 16,
            half_extent: 60.0,
            seed,
        }
    }
}

/// A generated LiDAR-like scene.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LidarScene {
    /// All scene points, shuffled into sensor-sweep-like order.
    pub cloud: PointCloud,
    /// Ground-truth boxes of the car objects.
    pub car_boxes: Vec<Aabb>,
}

/// Generates a synthetic outdoor scene.
///
/// Point budget: 55 % ground, 20 % walls, 15 % cars, 10 % poles/clutter
/// (roughly mimicking the composition of an urban LiDAR sweep). Points are
/// emitted in azimuthal sweep order, like a spinning LiDAR, which is what
/// makes the *memory* order of spatially-adjacent tree nodes irregular.
pub fn generate_scene(cfg: &LidarSceneConfig) -> LidarScene {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.total_points;
    let he = cfg.half_extent;
    let mut pts: Vec<Point3> = Vec::with_capacity(n + 1024);

    // ground plane with gentle undulation and dropout holes
    let n_ground = n * 55 / 100;
    for _ in 0..n_ground {
        let x = (rng.random::<f32>() * 2.0 - 1.0) * he;
        let y = (rng.random::<f32>() * 2.0 - 1.0) * he;
        let z = 0.05 * (x * 0.21).sin() * (y * 0.17).cos() + gaussian(&mut rng) * 0.02;
        pts.push(Point3::new(x, y, z));
    }

    // walls
    let n_walls_total = n * 20 / 100;
    let per_wall = n_walls_total / cfg.num_walls.max(1);
    for _ in 0..cfg.num_walls {
        let cx = (rng.random::<f32>() * 2.0 - 1.0) * he * 0.9;
        let cy = (rng.random::<f32>() * 2.0 - 1.0) * he * 0.9;
        let len = 8.0 + rng.random::<f32>() * 16.0;
        let height = 3.0 + rng.random::<f32>() * 5.0;
        let along_x = rng.random::<bool>();
        for _ in 0..per_wall {
            let t = (rng.random::<f32>() - 0.5) * len;
            let z = rng.random::<f32>() * height;
            let jitter = gaussian(&mut rng) * 0.03;
            let p = if along_x {
                Point3::new(cx + t, cy + jitter, z)
            } else {
                Point3::new(cx + jitter, cy + t, z)
            };
            pts.push(p);
        }
    }

    // cars
    let mut car_boxes = Vec::with_capacity(cfg.num_cars);
    let n_cars_total = n * 15 / 100;
    let per_car = n_cars_total / cfg.num_cars.max(1);
    for _ in 0..cfg.num_cars {
        let center = Point3::new(
            (rng.random::<f32>() * 2.0 - 1.0) * he * 0.8,
            (rng.random::<f32>() * 2.0 - 1.0) * he * 0.8,
            0.8,
        );
        let size = Point3::new(
            4.0 + rng.random::<f32>() * 0.8,
            1.7 + rng.random::<f32>() * 0.3,
            1.5 + rng.random::<f32>() * 0.2,
        );
        car_boxes.push(Aabb::from_center_size(center, size));
        pts.extend(shapes::cuboid(&mut rng, per_car, center, size));
    }

    // poles / clutter
    let n_poles_total = n - pts.len().min(n);
    let per_pole = (n_poles_total / cfg.num_poles.max(1)).max(1);
    for _ in 0..cfg.num_poles {
        let x = (rng.random::<f32>() * 2.0 - 1.0) * he;
        let y = (rng.random::<f32>() * 2.0 - 1.0) * he;
        let h = 2.0 + rng.random::<f32>() * 6.0;
        pts.extend(shapes::segment(
            &mut rng,
            per_pole,
            Point3::new(x, y, 0.0),
            Point3::new(x, y, h),
            0.05,
        ));
    }

    // Emit in azimuthal sweep order (sensor at origin), like a spinning
    // LiDAR: sort by angle, breaking memory locality of spatial neighbors.
    pts.sort_by(|a, b| {
        let aa = a.y.atan2(a.x);
        let ab = b.y.atan2(b.x);
        aa.partial_cmp(&ab).unwrap_or(std::cmp::Ordering::Equal)
    });

    LidarScene { cloud: PointCloud::from_points(pts), car_boxes }
}

/// One frustum detection sample: the points in a view frustum containing a
/// single car plus background, the per-point car mask, and the ground-truth
/// box.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DetectionSample {
    /// Frustum point cloud, centered per F-PointNet convention.
    pub cloud: PointCloud,
    /// 1 for points on the car, 0 for background.
    pub mask: Vec<usize>,
    /// Ground-truth car box in the same (centered) frame.
    pub gt_box: Aabb,
}

/// Train/test split of frustum detection samples.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DetectionDataset {
    /// Training samples.
    pub train: Vec<DetectionSample>,
    /// Held-out evaluation samples.
    pub test: Vec<DetectionSample>,
}

/// Configuration for [`DetectionDataset::generate`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DetectionConfig {
    /// Points per frustum sample.
    pub points_per_sample: usize,
    /// Number of training samples.
    pub train_samples: usize,
    /// Number of test samples.
    pub test_samples: usize,
    /// Fraction of points on the car (rest is background).
    pub car_fraction: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            points_per_sample: 512,
            train_samples: 160,
            test_samples: 48,
            car_fraction: 0.45,
            seed: 0xF9,
        }
    }
}

impl DetectionDataset {
    /// Generates a deterministic synthetic frustum dataset.
    pub fn generate(cfg: &DetectionConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let make = |count: usize, rng: &mut StdRng| {
            (0..count).map(|_| generate_frustum_sample(rng, cfg)).collect::<Vec<_>>()
        };
        let train = make(cfg.train_samples, &mut rng);
        let test = make(cfg.test_samples, &mut rng);
        DetectionDataset { train, test }
    }

    /// Geometric mean of per-sample box IoU against the test ground truth —
    /// the detection metric of Sec 6.
    ///
    /// # Panics
    ///
    /// Panics if `boxes.len() != self.test.len()`.
    pub fn geometric_mean_iou(&self, boxes: &[Aabb]) -> f32 {
        assert_eq!(boxes.len(), self.test.len(), "one predicted box per test sample");
        if self.test.is_empty() {
            return 0.0;
        }
        let mut log_sum = 0.0_f64;
        for (pred, sample) in boxes.iter().zip(&self.test) {
            let iou = sample.gt_box.iou(pred).max(1e-4);
            log_sum += (iou as f64).ln();
        }
        (log_sum / self.test.len() as f64).exp() as f32
    }
}

/// Generates one frustum sample.
pub fn generate_frustum_sample<R: Rng + ?Sized>(
    rng: &mut R,
    cfg: &DetectionConfig,
) -> DetectionSample {
    let n = cfg.points_per_sample;
    let n_car = ((n as f32) * cfg.car_fraction) as usize;

    // car box with random pose near the frustum center
    let center =
        Point3::new((rng.random::<f32>() - 0.5) * 2.0, (rng.random::<f32>() - 0.5) * 2.0, 0.75);
    let size = Point3::new(
        3.8 + rng.random::<f32>() * 1.0,
        1.6 + rng.random::<f32>() * 0.4,
        1.4 + rng.random::<f32>() * 0.3,
    );
    let gt_box = Aabb::from_center_size(center, size);

    let mut pts = shapes::cuboid(rng, n_car, center, size);
    let mut mask = vec![1usize; pts.len()];

    // background: ground + a clutter pole + a wall patch inside the frustum
    let n_bg = n - pts.len();
    let n_ground = n_bg * 6 / 10;
    for _ in 0..n_ground {
        pts.push(Point3::new(
            (rng.random::<f32>() - 0.5) * 10.0,
            (rng.random::<f32>() - 0.5) * 10.0,
            gaussian(rng) * 0.03,
        ));
    }
    let n_wall = n_bg - n_ground;
    let wall_x = 4.0 + rng.random::<f32>() * 2.0;
    for _ in 0..n_wall {
        pts.push(Point3::new(
            wall_x + gaussian(rng) * 0.05,
            (rng.random::<f32>() - 0.5) * 8.0,
            rng.random::<f32>() * 3.0,
        ));
    }
    mask.resize(pts.len(), 0);

    // center the frustum cloud on its centroid (F-PointNet's frame
    // normalization), adjusting the gt box by the same shift
    let mut cloud = PointCloud::from_points(pts);
    let c = cloud.centroid();
    cloud.translate(-c);
    let gt_box = Aabb::new(gt_box.min - c, gt_box.max - c);

    DetectionSample { cloud, mask, gt_box }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scene_cfg() -> LidarSceneConfig {
        LidarSceneConfig {
            total_points: 4_000,
            num_cars: 3,
            num_poles: 4,
            num_walls: 2,
            half_extent: 20.0,
            seed: 1,
        }
    }

    #[test]
    fn scene_point_budget() {
        let scene = generate_scene(&tiny_scene_cfg());
        let n = scene.cloud.len();
        assert!((3_500..=4_500).contains(&n), "got {n}");
        assert_eq!(scene.car_boxes.len(), 3);
    }

    #[test]
    fn scene_points_within_extent() {
        let scene = generate_scene(&tiny_scene_cfg());
        for p in &scene.cloud {
            assert!(p.x.abs() <= 21.0 && p.y.abs() <= 21.0, "point {p}");
            assert!(p.z >= -1.0 && p.z <= 10.0, "point {p}");
        }
    }

    #[test]
    fn scene_sweep_order_is_azimuthal() {
        let scene = generate_scene(&tiny_scene_cfg());
        let angles: Vec<f32> = scene.cloud.iter().map(|p| p.y.atan2(p.x)).collect();
        assert!(angles.windows(2).all(|w| w[0] <= w[1] + 1e-6));
    }

    #[test]
    fn scene_deterministic() {
        let a = generate_scene(&tiny_scene_cfg());
        let b = generate_scene(&tiny_scene_cfg());
        assert_eq!(a.cloud, b.cloud);
    }

    #[test]
    fn scene_cars_have_points_inside_boxes() {
        let scene = generate_scene(&tiny_scene_cfg());
        for car in &scene.car_boxes {
            let grown = Aabb::new(car.min - Point3::splat(0.01), car.max + Point3::splat(0.01));
            let inside = scene.cloud.iter().filter(|p| grown.contains(**p)).count();
            assert!(inside > 20, "car box {car} has only {inside} points");
        }
    }

    fn tiny_det_cfg() -> DetectionConfig {
        DetectionConfig {
            points_per_sample: 128,
            train_samples: 4,
            test_samples: 2,
            car_fraction: 0.4,
            seed: 2,
        }
    }

    #[test]
    fn detection_counts_and_mask() {
        let ds = DetectionDataset::generate(&tiny_det_cfg());
        assert_eq!(ds.train.len(), 4);
        assert_eq!(ds.test.len(), 2);
        for s in ds.train.iter().chain(&ds.test) {
            assert_eq!(s.cloud.len(), 128);
            assert_eq!(s.mask.len(), 128);
            let car_pts = s.mask.iter().filter(|&&m| m == 1).count();
            assert!(car_pts > 30 && car_pts < 80, "{car_pts} car points");
        }
    }

    #[test]
    fn detection_mask_matches_box() {
        let ds = DetectionDataset::generate(&tiny_det_cfg());
        for s in &ds.test {
            let grown =
                Aabb::new(s.gt_box.min - Point3::splat(0.01), s.gt_box.max + Point3::splat(0.01));
            for (p, &m) in s.cloud.iter().zip(&s.mask) {
                if m == 1 {
                    assert!(grown.contains(*p), "car point {p} outside gt box {grown}");
                }
            }
        }
    }

    #[test]
    fn geometric_mean_iou_bounds() {
        let ds = DetectionDataset::generate(&tiny_det_cfg());
        let perfect: Vec<Aabb> = ds.test.iter().map(|s| s.gt_box).collect();
        assert!((ds.geometric_mean_iou(&perfect) - 1.0).abs() < 1e-5);
        let bad: Vec<Aabb> = ds
            .test
            .iter()
            .map(|_| Aabb::from_center_size(Point3::splat(50.0), Point3::splat(1.0)))
            .collect();
        assert!(ds.geometric_mean_iou(&bad) < 0.01);
    }

    #[test]
    fn paper_scale_config_is_large() {
        let cfg = LidarSceneConfig::paper_scale(0);
        assert_eq!(cfg.total_points, 1_200_000);
    }
}
