//! ModelNet40-like synthetic classification dataset.
//!
//! The paper evaluates PointNet++(c) and DensePoint on ModelNet40 (Tbl 1).
//! ModelNet40 itself is a mesh corpus we cannot ship, so this module
//! generates a 10-class corpus of parametric shapes with random rotation,
//! anisotropic scaling, and jitter. The classes are chosen to be separable
//! by local geometry (what set-abstraction layers perceive) but not
//! trivially separable by global statistics, so approximation-induced
//! neighbor corruption measurably hurts accuracy — the property the Fig 13 /
//! 18 / 19 / 20 / 21 experiments rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cloud::PointCloud;
use crate::datasets::shapes;
use crate::point::Point3;
use crate::sampling::gaussian;

/// The shape classes of the synthetic classification dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum ShapeClass {
    /// Uniform sphere surface.
    Sphere = 0,
    /// Box surface.
    Cuboid = 1,
    /// Open cylinder shell.
    Cylinder = 2,
    /// Cone shell.
    Cone = 3,
    /// Torus.
    Torus = 4,
    /// Flat disk.
    Disk = 5,
    /// Helical curve.
    Helix = 6,
    /// Elongated ellipsoid.
    Ellipsoid = 7,
    /// Two stacked spheres.
    TwoLobes = 8,
    /// Three orthogonal bars.
    Cross = 9,
}

impl ShapeClass {
    /// All classes, in label order.
    pub const ALL: [ShapeClass; 10] = [
        ShapeClass::Sphere,
        ShapeClass::Cuboid,
        ShapeClass::Cylinder,
        ShapeClass::Cone,
        ShapeClass::Torus,
        ShapeClass::Disk,
        ShapeClass::Helix,
        ShapeClass::Ellipsoid,
        ShapeClass::TwoLobes,
        ShapeClass::Cross,
    ];

    /// Number of classes.
    pub const COUNT: usize = Self::ALL.len();

    /// The integer label of this class.
    pub fn label(self) -> usize {
        self as usize
    }

    /// The class for an integer label.
    ///
    /// # Panics
    ///
    /// Panics if `label >= ShapeClass::COUNT`.
    pub fn from_label(label: usize) -> ShapeClass {
        Self::ALL[label]
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::Sphere => "sphere",
            ShapeClass::Cuboid => "cuboid",
            ShapeClass::Cylinder => "cylinder",
            ShapeClass::Cone => "cone",
            ShapeClass::Torus => "torus",
            ShapeClass::Disk => "disk",
            ShapeClass::Helix => "helix",
            ShapeClass::Ellipsoid => "ellipsoid",
            ShapeClass::TwoLobes => "two_lobes",
            ShapeClass::Cross => "cross",
        }
    }

    /// Samples `n` surface points of this class's canonical shape.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R, n: usize) -> Vec<Point3> {
        let c = Point3::ZERO;
        match self {
            ShapeClass::Sphere => shapes::sphere(rng, n, c, 1.0),
            ShapeClass::Cuboid => shapes::cuboid(rng, n, c, Point3::new(1.4, 1.0, 0.8)),
            ShapeClass::Cylinder => shapes::cylinder(rng, n, c, 0.6, 1.8),
            ShapeClass::Cone => shapes::cone(rng, n, c, 0.9, 1.6),
            ShapeClass::Torus => shapes::torus(rng, n, c, 0.8, 0.25),
            ShapeClass::Disk => shapes::disk(rng, n, c, 1.0),
            ShapeClass::Helix => shapes::helix(rng, n, c, 0.7, 1.8, 2.5),
            ShapeClass::Ellipsoid => shapes::ellipsoid(rng, n, c, Point3::new(1.2, 0.5, 0.4)),
            ShapeClass::TwoLobes => shapes::two_lobes(rng, n, c, 0.7),
            ShapeClass::Cross => shapes::cross(rng, n, c, 0.9),
        }
    }
}

/// A labelled classification sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassificationSample {
    /// The (normalized, augmented) point cloud.
    pub cloud: PointCloud,
    /// Ground-truth class label (`0..ShapeClass::COUNT`).
    pub label: usize,
}

/// A train/test split of classification samples.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClassificationDataset {
    /// Training samples.
    pub train: Vec<ClassificationSample>,
    /// Held-out evaluation samples.
    pub test: Vec<ClassificationSample>,
    /// Number of distinct labels.
    pub num_classes: usize,
}

/// Configuration for [`ClassificationDataset::generate`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClassificationConfig {
    /// Points per sample cloud.
    pub points_per_cloud: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Gaussian jitter sigma applied after normalization.
    pub jitter_sigma: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClassificationConfig {
    fn default() -> Self {
        ClassificationConfig {
            points_per_cloud: 512,
            train_per_class: 24,
            test_per_class: 8,
            jitter_sigma: 0.01,
            seed: 0xC0FFEE,
        }
    }
}

impl ClassificationDataset {
    /// Generates a deterministic synthetic dataset.
    ///
    /// Each sample is drawn from its class's parametric surface, randomly
    /// rotated about z, anisotropically scaled by up to ±20 % per axis,
    /// jittered, and normalized into the unit sphere.
    pub fn generate(cfg: &ClassificationConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let make = |per_class: usize, rng: &mut StdRng| {
            let mut out = Vec::with_capacity(per_class * ShapeClass::COUNT);
            for class in ShapeClass::ALL {
                for _ in 0..per_class {
                    out.push(generate_sample(rng, class, cfg.points_per_cloud, cfg.jitter_sigma));
                }
            }
            out
        };
        let train = make(cfg.train_per_class, &mut rng);
        let test = make(cfg.test_per_class, &mut rng);
        ClassificationDataset { train, test, num_classes: ShapeClass::COUNT }
    }

    /// Overall accuracy of `predictions` against the test labels.
    ///
    /// This is the "overall accuracy" metric of the ModelNet40 evaluation
    /// (Sec 6).
    ///
    /// # Panics
    ///
    /// Panics if `predictions.len() != self.test.len()`.
    pub fn overall_accuracy(&self, predictions: &[usize]) -> f32 {
        assert_eq!(predictions.len(), self.test.len(), "one prediction per test sample");
        if self.test.is_empty() {
            return 0.0;
        }
        let correct = predictions.iter().zip(&self.test).filter(|(p, s)| **p == s.label).count();
        correct as f32 / self.test.len() as f32
    }
}

/// Generates one augmented sample of `class`.
pub fn generate_sample<R: Rng + ?Sized>(
    rng: &mut R,
    class: ShapeClass,
    points: usize,
    jitter_sigma: f32,
) -> ClassificationSample {
    let raw = class.sample(rng, points);
    let angle = rng.random::<f32>() * std::f32::consts::TAU;
    let sx = 1.0 + (rng.random::<f32>() - 0.5) * 0.4;
    let sy = 1.0 + (rng.random::<f32>() - 0.5) * 0.4;
    let sz = 1.0 + (rng.random::<f32>() - 0.5) * 0.4;
    let mut cloud: PointCloud = raw
        .into_iter()
        .map(|p| {
            let p = Point3::new(p.x * sx, p.y * sy, p.z * sz).rotated_z(angle);
            p + Point3::new(gaussian(rng), gaussian(rng), gaussian(rng)) * jitter_sigma
        })
        .collect();
    cloud.normalize_unit_sphere();
    ClassificationSample { cloud, label: class.label() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ClassificationConfig {
        ClassificationConfig {
            points_per_cloud: 64,
            train_per_class: 2,
            test_per_class: 1,
            jitter_sigma: 0.01,
            seed: 5,
        }
    }

    #[test]
    fn labels_round_trip() {
        for class in ShapeClass::ALL {
            assert_eq!(ShapeClass::from_label(class.label()), class);
            assert!(!class.name().is_empty());
        }
        assert_eq!(ShapeClass::COUNT, 10);
    }

    #[test]
    fn generate_counts_and_labels() {
        let ds = ClassificationDataset::generate(&tiny_cfg());
        assert_eq!(ds.train.len(), 2 * 10);
        assert_eq!(ds.test.len(), 10);
        assert_eq!(ds.num_classes, 10);
        for s in ds.train.iter().chain(&ds.test) {
            assert_eq!(s.cloud.len(), 64);
            assert!(s.label < 10);
        }
        // every class present in train
        let mut seen = [false; 10];
        for s in &ds.train {
            seen[s.label] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ClassificationDataset::generate(&tiny_cfg());
        let b = ClassificationDataset::generate(&tiny_cfg());
        assert_eq!(a.train[0].cloud, b.train[0].cloud);
        let mut cfg = tiny_cfg();
        cfg.seed = 6;
        let c = ClassificationDataset::generate(&cfg);
        assert_ne!(a.train[0].cloud, c.train[0].cloud);
    }

    #[test]
    fn samples_are_normalized() {
        let ds = ClassificationDataset::generate(&tiny_cfg());
        for s in &ds.train {
            assert!(s.cloud.centroid().norm() < 1e-4);
            for p in &s.cloud {
                assert!(p.norm() <= 1.0 + 1e-5);
            }
        }
    }

    #[test]
    fn accuracy_metric() {
        let ds = ClassificationDataset::generate(&tiny_cfg());
        let perfect: Vec<usize> = ds.test.iter().map(|s| s.label).collect();
        assert_eq!(ds.overall_accuracy(&perfect), 1.0);
        let wrong: Vec<usize> = ds.test.iter().map(|s| (s.label + 1) % 10).collect();
        assert_eq!(ds.overall_accuracy(&wrong), 0.0);
    }

    #[test]
    #[should_panic(expected = "one prediction per test sample")]
    fn accuracy_rejects_wrong_len() {
        let ds = ClassificationDataset::generate(&tiny_cfg());
        let _ = ds.overall_accuracy(&[0]);
    }
}
