//! ShapeNet-like synthetic part-segmentation dataset.
//!
//! The paper evaluates PointNet++(s) on ShapeNet part segmentation with the
//! mIoU metric (Sec 6). This module assembles shapes from labelled parts
//! (e.g. a "table" = top plane + four legs) so a per-point classifier has a
//! learnable geometric task whose accuracy degrades when neighborhoods are
//! corrupted by approximation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cloud::PointCloud;
use crate::datasets::shapes;
use crate::point::Point3;

/// Number of distinct part labels across the dataset.
pub const NUM_PARTS: usize = 4;

/// Shape categories of the segmentation dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegCategory {
    /// Flat top (part 0) on four legs (part 1).
    Table,
    /// Shade cone (part 2), pole (part 1), base disk (part 0).
    Lamp,
    /// Fuselage (part 0), wings (part 3), tail fin (part 2).
    Plane,
    /// Cup body cylinder (part 0) with a handle torus segment (part 3).
    Mug,
}

impl SegCategory {
    /// All categories.
    pub const ALL: [SegCategory; 4] =
        [SegCategory::Table, SegCategory::Lamp, SegCategory::Plane, SegCategory::Mug];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SegCategory::Table => "table",
            SegCategory::Lamp => "lamp",
            SegCategory::Plane => "plane",
            SegCategory::Mug => "mug",
        }
    }
}

/// A labelled segmentation sample: one point cloud plus one part label per
/// point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SegmentationSample {
    /// The point cloud.
    pub cloud: PointCloud,
    /// Part label (`0..NUM_PARTS`) for each point of `cloud`.
    pub labels: Vec<usize>,
    /// The generating category.
    pub category: SegCategory,
}

/// Train/test split of segmentation samples.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SegmentationDataset {
    /// Training samples.
    pub train: Vec<SegmentationSample>,
    /// Held-out evaluation samples.
    pub test: Vec<SegmentationSample>,
    /// Number of part labels.
    pub num_parts: usize,
}

/// Configuration for [`SegmentationDataset::generate`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SegmentationConfig {
    /// Points per sample cloud (approximate; parts round independently).
    pub points_per_cloud: usize,
    /// Training samples per category.
    pub train_per_category: usize,
    /// Test samples per category.
    pub test_per_category: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SegmentationConfig {
    fn default() -> Self {
        SegmentationConfig {
            points_per_cloud: 512,
            train_per_category: 24,
            test_per_category: 8,
            seed: 0x5E63,
        }
    }
}

impl SegmentationDataset {
    /// Generates a deterministic synthetic dataset.
    pub fn generate(cfg: &SegmentationConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let make = |per: usize, rng: &mut StdRng| {
            let mut out = Vec::with_capacity(per * SegCategory::ALL.len());
            for cat in SegCategory::ALL {
                for _ in 0..per {
                    out.push(generate_sample(rng, cat, cfg.points_per_cloud));
                }
            }
            out
        };
        let train = make(cfg.train_per_category, &mut rng);
        let test = make(cfg.test_per_category, &mut rng);
        SegmentationDataset { train, test, num_parts: NUM_PARTS }
    }

    /// Instance-average mIoU of per-point `predictions` against the test
    /// labels — the ShapeNet metric of Sec 6.
    ///
    /// `predictions[i]` must hold one predicted label per point of test
    /// sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if the prediction shapes do not match the test set.
    pub fn mean_iou(&self, predictions: &[Vec<usize>]) -> f32 {
        assert_eq!(predictions.len(), self.test.len(), "one prediction vec per test sample");
        if self.test.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (pred, sample) in predictions.iter().zip(&self.test) {
            total += sample_iou(pred, &sample.labels, self.num_parts);
        }
        total / self.test.len() as f32
    }
}

/// Mean IoU over the part labels present in either prediction or ground
/// truth of a single sample.
///
/// # Panics
///
/// Panics if `pred.len() != truth.len()`.
pub fn sample_iou(pred: &[usize], truth: &[usize], num_parts: usize) -> f32 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    let mut inter = vec![0usize; num_parts];
    let mut union = vec![0usize; num_parts];
    for (&p, &t) in pred.iter().zip(truth) {
        if p == t {
            inter[t] += 1;
            union[t] += 1;
        } else {
            union[p] += 1;
            union[t] += 1;
        }
    }
    let mut sum = 0.0;
    let mut parts = 0;
    for part in 0..num_parts {
        if union[part] > 0 {
            sum += inter[part] as f32 / union[part] as f32;
            parts += 1;
        }
    }
    if parts == 0 {
        1.0
    } else {
        sum / parts as f32
    }
}

/// Generates one augmented sample of `cat` with roughly `points` points.
pub fn generate_sample<R: Rng + ?Sized>(
    rng: &mut R,
    cat: SegCategory,
    points: usize,
) -> SegmentationSample {
    let mut pts: Vec<Point3> = Vec::with_capacity(points);
    let mut labels: Vec<usize> = Vec::with_capacity(points);
    let add = |vs: Vec<Point3>, label: usize, pts: &mut Vec<Point3>, labels: &mut Vec<usize>| {
        labels.extend(std::iter::repeat_n(label, vs.len()));
        pts.extend(vs);
    };

    match cat {
        SegCategory::Table => {
            let top = points / 2;
            let per_leg = (points - top) / 4;
            add(
                shapes::plane_patch(rng, top, Point3::new(0.0, 0.0, 0.5), 1.6, 1.0),
                0,
                &mut pts,
                &mut labels,
            );
            for (dx, dy) in [(-0.7, -0.4), (-0.7, 0.4), (0.7, -0.4), (0.7, 0.4)] {
                add(
                    shapes::segment(
                        rng,
                        per_leg,
                        Point3::new(dx, dy, -0.5),
                        Point3::new(dx, dy, 0.5),
                        0.02,
                    ),
                    1,
                    &mut pts,
                    &mut labels,
                );
            }
        }
        SegCategory::Lamp => {
            let third = points / 3;
            add(
                shapes::disk(rng, third, Point3::new(0.0, 0.0, -0.8), 0.5),
                0,
                &mut pts,
                &mut labels,
            );
            add(
                shapes::segment(
                    rng,
                    third,
                    Point3::new(0.0, 0.0, -0.8),
                    Point3::new(0.0, 0.0, 0.4),
                    0.02,
                ),
                1,
                &mut pts,
                &mut labels,
            );
            add(
                shapes::cone(rng, points - 2 * third, Point3::new(0.0, 0.0, 0.6), 0.5, 0.5),
                2,
                &mut pts,
                &mut labels,
            );
        }
        SegCategory::Plane => {
            let body = points / 2;
            let wings = points / 3;
            add(
                shapes::ellipsoid(rng, body, Point3::ZERO, Point3::new(1.0, 0.18, 0.18)),
                0,
                &mut pts,
                &mut labels,
            );
            add(
                shapes::plane_patch(rng, wings, Point3::new(0.1, 0.0, 0.0), 0.45, 1.9),
                3,
                &mut pts,
                &mut labels,
            );
            add(
                shapes::plane_patch(
                    rng,
                    points - body - wings,
                    Point3::new(-0.9, 0.0, 0.2),
                    0.3,
                    0.5,
                ),
                2,
                &mut pts,
                &mut labels,
            );
        }
        SegCategory::Mug => {
            let body = points * 3 / 4;
            add(shapes::cylinder(rng, body, Point3::ZERO, 0.5, 1.0), 0, &mut pts, &mut labels);
            // handle: half-torus sticking out in +x
            let handle: Vec<Point3> =
                shapes::torus(rng, 2 * (points - body), Point3::ZERO, 0.3, 0.06)
                    .into_iter()
                    .map(|p| Point3::new(p.x + 0.5, p.z, p.y)) // rotate into xz plane, offset
                    .filter(|p| p.x > 0.55)
                    .take(points - body)
                    .collect();
            add(handle, 3, &mut pts, &mut labels);
        }
    }

    // shared augmentation: rotate about z, normalize
    let angle = rng.random::<f32>() * std::f32::consts::TAU;
    let mut cloud: PointCloud = pts.into_iter().map(|p| p.rotated_z(angle)).collect();
    cloud.normalize_unit_sphere();
    SegmentationSample { cloud, labels, category: cat }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SegmentationConfig {
        SegmentationConfig {
            points_per_cloud: 96,
            train_per_category: 2,
            test_per_category: 1,
            seed: 9,
        }
    }

    #[test]
    fn generate_counts() {
        let ds = SegmentationDataset::generate(&tiny_cfg());
        assert_eq!(ds.train.len(), 8);
        assert_eq!(ds.test.len(), 4);
        for s in ds.train.iter().chain(&ds.test) {
            assert_eq!(s.cloud.len(), s.labels.len());
            assert!(s.cloud.len() > 48, "category {:?} too sparse", s.category);
            assert!(s.labels.iter().all(|&l| l < NUM_PARTS));
        }
    }

    #[test]
    fn each_category_has_multiple_parts() {
        let ds = SegmentationDataset::generate(&tiny_cfg());
        for s in &ds.train {
            let mut seen = [false; NUM_PARTS];
            for &l in &s.labels {
                seen[l] = true;
            }
            assert!(seen.iter().filter(|&&x| x).count() >= 2, "category {:?}", s.category);
        }
    }

    #[test]
    fn deterministic() {
        let a = SegmentationDataset::generate(&tiny_cfg());
        let b = SegmentationDataset::generate(&tiny_cfg());
        assert_eq!(a.train[0].cloud, b.train[0].cloud);
        assert_eq!(a.train[0].labels, b.train[0].labels);
    }

    #[test]
    fn iou_perfect_and_disjoint() {
        assert_eq!(sample_iou(&[0, 1, 2], &[0, 1, 2], 4), 1.0);
        assert_eq!(sample_iou(&[1, 1, 1], &[0, 0, 0], 4), 0.0);
        // half right on one part, one part absent from pred
        let iou = sample_iou(&[0, 0, 1, 1], &[0, 0, 0, 0], 4);
        // part 0: inter 2, union 4 -> 0.5 ; part 1: inter 0, union 2 -> 0
        assert!((iou - 0.25).abs() < 1e-6);
    }

    #[test]
    fn mean_iou_metric() {
        let ds = SegmentationDataset::generate(&tiny_cfg());
        let perfect: Vec<Vec<usize>> = ds.test.iter().map(|s| s.labels.clone()).collect();
        assert_eq!(ds.mean_iou(&perfect), 1.0);
        let majority: Vec<Vec<usize>> = ds.test.iter().map(|s| vec![0; s.labels.len()]).collect();
        assert!(ds.mean_iou(&majority) < 0.9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn iou_rejects_mismatch() {
        let _ = sample_iou(&[0], &[0, 1], 4);
    }
}
