//! Parametric surface samplers for the synthetic datasets.
//!
//! Each sampler draws `n` points on the surface of a canonical shape. These
//! are the building blocks of the ModelNet-like classification dataset
//! (distinct shape classes) and the ShapeNet-like segmentation dataset
//! (shapes assembled from labelled parts).

use rand::Rng;

use crate::point::Point3;
use crate::sampling::gaussian;

/// Samples `n` points uniformly on a sphere of `radius` centered at `center`.
pub fn sphere<R: Rng + ?Sized>(rng: &mut R, n: usize, center: Point3, radius: f32) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let v = Point3::new(gaussian(rng), gaussian(rng), gaussian(rng)).normalized();
            center + v * radius
        })
        .collect()
}

/// Samples `n` points uniformly on the surface of an axis-aligned box.
pub fn cuboid<R: Rng + ?Sized>(rng: &mut R, n: usize, center: Point3, size: Point3) -> Vec<Point3> {
    let h = size / 2.0;
    // face areas: +-x, +-y, +-z
    let ax = size.y * size.z;
    let ay = size.x * size.z;
    let az = size.x * size.y;
    let total = 2.0 * (ax + ay + az);
    (0..n)
        .map(|_| {
            let mut t = rng.random::<f32>() * total;
            let u = rng.random::<f32>() * 2.0 - 1.0;
            let v = rng.random::<f32>() * 2.0 - 1.0;
            let sgn = if rng.random::<bool>() { 1.0 } else { -1.0 };
            let p = if t < 2.0 * ax {
                Point3::new(sgn * h.x, u * h.y, v * h.z)
            } else {
                t -= 2.0 * ax;
                if t < 2.0 * ay {
                    Point3::new(u * h.x, sgn * h.y, v * h.z)
                } else {
                    Point3::new(u * h.x, v * h.y, sgn * h.z)
                }
            };
            center + p
        })
        .collect()
}

/// Samples `n` points on the lateral surface of a z-aligned cylinder
/// (no caps).
pub fn cylinder<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    center: Point3,
    radius: f32,
    height: f32,
) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let theta = rng.random::<f32>() * std::f32::consts::TAU;
            let z = (rng.random::<f32>() - 0.5) * height;
            center + Point3::new(radius * theta.cos(), radius * theta.sin(), z)
        })
        .collect()
}

/// Samples `n` points on the lateral surface of a z-aligned cone with apex
/// up.
pub fn cone<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    center: Point3,
    radius: f32,
    height: f32,
) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            // area-uniform in slant height: radius shrinks linearly with z
            let t = rng.random::<f32>().sqrt(); // bias toward the wide base
            let theta = rng.random::<f32>() * std::f32::consts::TAU;
            let r = radius * t;
            let z = height * (1.0 - t) - height / 2.0;
            center + Point3::new(r * theta.cos(), r * theta.sin(), z)
        })
        .collect()
}

/// Samples `n` points on a torus in the xy-plane.
pub fn torus<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    center: Point3,
    major: f32,
    minor: f32,
) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let u = rng.random::<f32>() * std::f32::consts::TAU;
            let v = rng.random::<f32>() * std::f32::consts::TAU;
            let r = major + minor * v.cos();
            center + Point3::new(r * u.cos(), r * u.sin(), minor * v.sin())
        })
        .collect()
}

/// Samples `n` points on a flat disk in the xy-plane.
pub fn disk<R: Rng + ?Sized>(rng: &mut R, n: usize, center: Point3, radius: f32) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let r = radius * rng.random::<f32>().sqrt();
            let theta = rng.random::<f32>() * std::f32::consts::TAU;
            center + Point3::new(r * theta.cos(), r * theta.sin(), 0.0)
        })
        .collect()
}

/// Samples `n` points on an axis-aligned rectangle in the xy-plane.
pub fn plane_patch<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    center: Point3,
    size_x: f32,
    size_y: f32,
) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let x = (rng.random::<f32>() - 0.5) * size_x;
            let y = (rng.random::<f32>() - 0.5) * size_y;
            center + Point3::new(x, y, 0.0)
        })
        .collect()
}

/// Samples `n` points on a helix winding around the z axis — an elongated,
/// highly non-convex shape that stresses neighbor search locality.
pub fn helix<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    center: Point3,
    radius: f32,
    height: f32,
    turns: f32,
) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let t = rng.random::<f32>();
            let theta = t * turns * std::f32::consts::TAU;
            let thickness = 0.05 * radius;
            center
                + Point3::new(
                    radius * theta.cos() + gaussian(rng) * thickness,
                    radius * theta.sin() + gaussian(rng) * thickness,
                    (t - 0.5) * height + gaussian(rng) * thickness,
                )
        })
        .collect()
}

/// Samples `n` points on an ellipsoid with the given semi-axes.
pub fn ellipsoid<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    center: Point3,
    semi: Point3,
) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let v = Point3::new(gaussian(rng), gaussian(rng), gaussian(rng)).normalized();
            center + Point3::new(v.x * semi.x, v.y * semi.y, v.z * semi.z)
        })
        .collect()
}

/// Samples `n` points along a line segment with small lateral spread.
pub fn segment<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    from: Point3,
    to: Point3,
    spread: f32,
) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let t = rng.random::<f32>();
            from + (to - from) * t
                + Point3::new(gaussian(rng), gaussian(rng), gaussian(rng)) * spread
        })
        .collect()
}

/// Samples `n` points on two stacked spheres, a snowman-like two-lobe shape.
pub fn two_lobes<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    center: Point3,
    radius: f32,
) -> Vec<Point3> {
    let half = n / 2;
    let mut pts = sphere(rng, half, center + Point3::new(0.0, 0.0, radius * 0.8), radius * 0.6);
    pts.extend(sphere(rng, n - half, center - Point3::new(0.0, 0.0, radius * 0.4), radius));
    pts
}

/// Samples `n` points on a plus-sign / cross of three orthogonal bars.
pub fn cross<R: Rng + ?Sized>(rng: &mut R, n: usize, center: Point3, arm: f32) -> Vec<Point3> {
    let per = n / 3;
    let thin = arm * 0.18;
    let mut pts = cuboid(rng, per, center, Point3::new(2.0 * arm, thin, thin));
    pts.extend(cuboid(rng, per, center, Point3::new(thin, 2.0 * arm, thin)));
    pts.extend(cuboid(rng, n - 2 * per, center, Point3::new(thin, thin, 2.0 * arm)));
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn sphere_points_on_surface() {
        let mut r = rng();
        let c = Point3::new(1.0, 2.0, 3.0);
        for p in sphere(&mut r, 200, c, 2.0) {
            assert!((p.dist(c) - 2.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cuboid_points_on_faces() {
        let mut r = rng();
        let size = Point3::new(2.0, 4.0, 6.0);
        for p in cuboid(&mut r, 300, Point3::ZERO, size) {
            let q = p;
            let on_x = (q.x.abs() - 1.0).abs() < 1e-5;
            let on_y = (q.y.abs() - 2.0).abs() < 1e-5;
            let on_z = (q.z.abs() - 3.0).abs() < 1e-5;
            assert!(on_x || on_y || on_z, "point {q} not on any face");
            assert!(q.x.abs() <= 1.0 + 1e-5 && q.y.abs() <= 2.0 + 1e-5 && q.z.abs() <= 3.0 + 1e-5);
        }
    }

    #[test]
    fn cylinder_radius_and_height() {
        let mut r = rng();
        for p in cylinder(&mut r, 200, Point3::ZERO, 1.5, 4.0) {
            let rad = (p.x * p.x + p.y * p.y).sqrt();
            assert!((rad - 1.5).abs() < 1e-4);
            assert!(p.z.abs() <= 2.0 + 1e-5);
        }
    }

    #[test]
    fn cone_narrows_with_height() {
        let mut r = rng();
        for p in cone(&mut r, 300, Point3::ZERO, 1.0, 2.0) {
            let rad = (p.x * p.x + p.y * p.y).sqrt();
            // r = radius * (1 - (z + h/2)/h)
            let expect = 1.0 - (p.z + 1.0) / 2.0;
            assert!((rad - expect).abs() < 1e-4, "rad {rad} expect {expect}");
        }
    }

    #[test]
    fn torus_distance_from_ring() {
        let mut r = rng();
        for p in torus(&mut r, 300, Point3::ZERO, 2.0, 0.5) {
            let ring = (p.x * p.x + p.y * p.y).sqrt() - 2.0;
            let d = (ring * ring + p.z * p.z).sqrt();
            assert!((d - 0.5).abs() < 1e-4);
        }
    }

    #[test]
    fn disk_is_flat_and_bounded() {
        let mut r = rng();
        for p in disk(&mut r, 200, Point3::ZERO, 3.0) {
            assert_eq!(p.z, 0.0);
            assert!((p.x * p.x + p.y * p.y).sqrt() <= 3.0 + 1e-5);
        }
    }

    #[test]
    fn segment_stays_near_line() {
        let mut r = rng();
        let from = Point3::ZERO;
        let to = Point3::new(10.0, 0.0, 0.0);
        for p in segment(&mut r, 200, from, to, 0.01) {
            assert!(p.y.abs() < 0.2 && p.z.abs() < 0.2);
            assert!(p.x > -0.2 && p.x < 10.2);
        }
    }

    #[test]
    fn shape_counts() {
        let mut r = rng();
        assert_eq!(helix(&mut r, 123, Point3::ZERO, 1.0, 2.0, 3.0).len(), 123);
        assert_eq!(two_lobes(&mut r, 123, Point3::ZERO, 1.0).len(), 123);
        assert_eq!(cross(&mut r, 123, Point3::ZERO, 1.0).len(), 123);
        assert_eq!(ellipsoid(&mut r, 123, Point3::ZERO, Point3::splat(1.0)).len(), 123);
        assert_eq!(plane_patch(&mut r, 123, Point3::ZERO, 1.0, 1.0).len(), 123);
    }

    #[test]
    fn ellipsoid_on_surface() {
        let mut r = rng();
        let semi = Point3::new(1.0, 2.0, 0.5);
        for p in ellipsoid(&mut r, 200, Point3::ZERO, semi) {
            let v = (p.x / semi.x).powi(2) + (p.y / semi.y).powi(2) + (p.z / semi.z).powi(2);
            assert!((v - 1.0).abs() < 1e-3);
        }
    }
}
