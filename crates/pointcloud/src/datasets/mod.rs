//! Synthetic dataset generators standing in for ModelNet40, ShapeNet, and
//! KITTI (see Tbl 1 of the paper and the substitution table in DESIGN.md).
//!
//! All generators are deterministic given a seed, so every experiment in
//! the workspace is reproducible bit-for-bit.

pub mod classification;
pub mod lidar;
pub mod segmentation;
pub mod shapes;

pub use classification::{
    generate_sample as generate_classification_sample, ClassificationConfig, ClassificationDataset,
    ClassificationSample, ShapeClass,
};
pub use lidar::{
    generate_frustum_sample, generate_scene, DetectionConfig, DetectionDataset, DetectionSample,
    LidarScene, LidarSceneConfig,
};
pub use segmentation::{
    generate_sample as generate_segmentation_sample, sample_iou, SegCategory, SegmentationConfig,
    SegmentationDataset, SegmentationSample, NUM_PARTS,
};
