//! Point-cloud geometry substrate for the Crescent (ISCA 2022) reproduction.
//!
//! This crate provides everything below the neighbor-search layer:
//!
//! * [`Point3`] / [`Aabb`] — 3D points and bounding boxes;
//! * [`PointCloud`] — the container every pipeline stage consumes;
//! * [`farthest_point_sample`] — the centroid sampler of PointNet++-style
//!   set-abstraction layers;
//! * [`radius_search_bruteforce`] / [`knn_bruteforce`] — exhaustive-search
//!   references used both for correctness checks and as the intra-sub-tree
//!   strategy of the Tigris/QuickNN baselines;
//! * [`OracleIndex`] — an incremental uniform-grid index with answers
//!   bit-identical to the brute force, patched (not rebuilt) across
//!   rigid-translation frames — the sweep explorer's fast recall oracle;
//! * [`datasets`] — deterministic synthetic stand-ins for ModelNet40,
//!   ShapeNet, and KITTI (see DESIGN.md for the substitution rationale).
//!
//! # Example
//!
//! ```
//! use crescent_pointcloud::{
//!     datasets::{ClassificationConfig, ClassificationDataset},
//!     farthest_point_sample, radius_search_bruteforce,
//! };
//!
//! let ds = ClassificationDataset::generate(&ClassificationConfig {
//!     points_per_cloud: 128,
//!     train_per_class: 1,
//!     test_per_class: 1,
//!     ..ClassificationConfig::default()
//! });
//! let cloud = &ds.train[0].cloud;
//! let centroids = farthest_point_sample(cloud, 16);
//! let hits = radius_search_bruteforce(cloud, cloud.point(centroids[0]), 0.3, Some(32));
//! assert!(!hits.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bruteforce;
pub mod cloud;
pub mod datasets;
pub mod oracle;
pub mod point;
pub mod sampling;

pub use bruteforce::{
    knn_bruteforce, knn_bruteforce_into, radius_search_bruteforce, radius_search_bruteforce_into,
    Neighbor,
};
pub use cloud::{PointCloud, POINT_BYTES};
pub use oracle::{OracleAdvance, OracleIndex};
pub use point::{Aabb, Point3, DIMS};
pub use sampling::{
    farthest_point_sample, farthest_point_subcloud, gaussian, jitter, random_sample, replicate_to_k,
};
