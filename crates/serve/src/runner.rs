//! The parallel serve executor: builds the shared [`ServiceContext`]
//! once (map trees, canonical tenant mix, per-tick queries), then fans
//! the service grid points out over a `std::thread::scope` worker pool.
//!
//! # Determinism
//!
//! The report is a pure function of the spec, whatever the worker
//! count: each grid point runs its own complete, single-threaded
//! scheduler simulation over the shared read-only context, workers
//! claim points by atomic index but write each row into its own
//! pre-allocated slot, and the report is assembled in grid order. Two
//! runs — or a 1-worker and an N-worker run — therefore serialize to
//! byte-identical JSON, which is what lets the CI serve gate compare
//! reports with an exact comparator.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::controller::ControlMode;
use crate::report::{ServeReport, ServeRow};
use crate::scheduler::{run_service, run_service_controlled, ServiceContext};
use crate::spec::ServeSpec;
use crate::timings::ServeTimings;

/// A reasonable worker count for the local machine, capped so the quick
/// serve run does not oversubscribe CI runners.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Execution statistics of one serve run — operational facts about the
/// run itself, deliberately kept OUT of the report bytes (the report is
/// a pure function of the spec; these are not).
#[derive(Clone, Copy, Debug)]
pub struct ServeRunStats {
    /// Grid points simulated.
    pub points: usize,
    /// The **effective** worker count: the requested pool clamped to
    /// the point count.
    pub workers: usize,
    /// Tenants in the canonical mix the context was built with (the
    /// largest tenant-count axis value).
    pub tenants_built: usize,
    /// Total **wall-clock** nanoseconds spent building the shared
    /// context. Measured — it lives here and in the `--timings` sidecar
    /// precisely because it can never live in the report bytes.
    pub context_nanos: u64,
    /// Total **wall-clock** nanoseconds spent simulating grid points,
    /// summed across workers. Measured, never part of the report.
    pub point_nanos: u64,
}

/// Runs the full serve grid on `workers` OS threads and returns the
/// report.
///
/// Fails (with a message naming the offending knob) if the spec does
/// not validate; never panics on a validated spec.
pub fn run_serve(spec: &ServeSpec, workers: usize) -> Result<ServeReport, String> {
    run_serve_with_stats(spec, workers).map(|(report, _)| report)
}

/// [`run_serve`], also returning the run's execution statistics.
pub fn run_serve_with_stats(
    spec: &ServeSpec,
    workers: usize,
) -> Result<(ServeReport, ServeRunStats), String> {
    run_serve_timed(spec, workers).map(|(report, stats, _)| (report, stats))
}

/// [`run_serve_with_stats`], also returning the run's wall-clock
/// measurements ([`ServeTimings`]) — the `repro serve --timings`
/// sidecar's data source. The report bytes are identical to the untimed
/// variants': timing is observed, never fed back.
pub fn run_serve_timed(
    spec: &ServeSpec,
    workers: usize,
) -> Result<(ServeReport, ServeRunStats, ServeTimings), String> {
    spec.validate()?;
    let run_start = Instant::now();
    // The context — map stream, tree maintenance, tenant mix, query
    // generation — is a pure function of the spec and independent of
    // every grid axis, so it is built once at the largest tenant count
    // and shared read-only; a grid point selects a tenant prefix.
    let context_start = Instant::now();
    let ctx = ServiceContext::build(spec);
    let context_nanos = context_start.elapsed().as_nanos() as u64;

    let points = spec.expand();
    let workers = workers.clamp(1, points.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ServeRow>>> = points.iter().map(|_| Mutex::new(None)).collect();
    let point_clocks: Vec<AtomicU64> = points.iter().map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else { break };
                let point_start = Instant::now();
                let outcome = match point.controller {
                    ControlMode::Static => {
                        run_service(&ctx, point.tenants, point.fleet, point.elision_depth)
                    }
                    ControlMode::Slo => run_service_controlled(
                        &ctx,
                        point.tenants,
                        point.fleet,
                        point.elision_depth,
                        &spec.controller,
                    ),
                };
                let row = ServeRow::from_ledger(*point, &outcome.ledger);
                point_clocks[i].store(point_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                *slots[i].lock().expect("row slot poisoned") = Some(row);
            });
        }
    });

    let rows: Vec<ServeRow> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("row slot poisoned").expect("every claimed point completed")
        })
        .collect();
    let timings = ServeTimings {
        total_nanos: run_start.elapsed().as_nanos() as u64,
        context_nanos,
        points: points
            .iter()
            .zip(&point_clocks)
            .map(|(point, clock)| (point.index, clock.load(Ordering::Relaxed)))
            .collect(),
    };
    let stats = ServeRunStats {
        points: points.len(),
        workers,
        tenants_built: ctx.tenants.len(),
        context_nanos,
        point_nanos: timings.point_nanos(),
    };
    Ok((ServeReport { spec: spec.clone(), rows }, stats, timings))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An 8-point spec small enough for debug-profile unit tests (the
    /// full quick grid is exercised by `tests/serve_baseline.rs` at the
    /// workspace root in release mode). Keeps both controller modes so
    /// the runner's per-point dispatch is covered.
    fn tiny_spec() -> ServeSpec {
        let mut spec = ServeSpec::quick();
        spec.label = "tiny".to_string();
        spec.map.scene.total_points = 1_500;
        spec.map.num_frames = 4;
        spec.tenant_base.scene.total_points = 600;
        spec.tenant_base.num_frames = 4;
        spec.tenant_base.queries_per_frame = 24;
        spec.tenant_counts = vec![2, 4];
        spec.fleet_sizes = vec![1];
        spec.elision_depths = vec![0, 4];
        spec
    }

    #[test]
    fn report_is_byte_identical_across_runs_and_worker_counts() {
        let spec = tiny_spec();
        let a = run_serve(&spec, 1).expect("serve runs");
        let b = run_serve(&spec, 1).expect("serve runs");
        let c = run_serve(&spec, 4).expect("serve runs");
        assert_eq!(a.to_json(), b.to_json(), "two runs must match");
        assert_eq!(a.to_json(), c.to_json(), "worker count must not leak into the report");
    }

    #[test]
    fn rows_are_in_grid_order_with_real_metrics() {
        let report = run_serve(&tiny_spec(), 2).expect("serve runs");
        assert_eq!(report.rows.len(), 8);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert!(row.admitted > 0);
            assert!(row.wavefronts > 0);
            assert!(row.makespan > 0);
            assert!(row.p50 > 0 && row.p50 <= row.p95 && row.p95 <= row.p99);
            assert!(row.energy.total() > 0.0);
            assert_eq!(row.per_tenant.len(), row.tenants);
            // mode axis is innermost: even rows static, odd rows slo
            assert_eq!(row.controller, if i % 2 == 0 { "static" } else { "slo" });
            assert!(row.h_e_cycles.iter().map(|&(_, c)| c).sum::<u64>() > 0);
        }
        // a static row's final h_e echoes its pinned depth
        assert_eq!(report.rows[2].h_e_final, report.rows[2].elision_depth);
        // h_e = 0 and h_e = 4 rows of the same mix may differ only in
        // results, not in admission (the schedule depends on latency,
        // which elision can move — but both must serve all frames here)
        assert_eq!(report.rows[0].admitted + report.rows[0].rejected, 2 * 4);
    }

    #[test]
    fn timings_cover_every_point_without_touching_the_report() {
        let spec = tiny_spec();
        let (report, stats, timings) = run_serve_timed(&spec, 2).expect("serve runs");
        assert_eq!(timings.points.len(), report.rows.len());
        for ((index, _), row) in timings.points.iter().zip(&report.rows) {
            assert_eq!(*index, row.index);
        }
        assert_eq!(stats.context_nanos, timings.context_nanos);
        assert_eq!(stats.point_nanos, timings.point_nanos());
        assert!(timings.total_nanos >= timings.context_nanos);
        assert_eq!(stats.tenants_built, 4);
        let untimed = run_serve(&spec, 2).expect("serve runs");
        assert_eq!(report.to_json(), untimed.to_json(), "clocks must not perturb the bytes");
    }

    #[test]
    fn stats_report_the_effective_worker_count() {
        let spec = tiny_spec();
        let (report, stats) = run_serve_with_stats(&spec, 64).expect("serve runs");
        assert_eq!(stats.points, report.rows.len());
        assert_eq!(stats.workers, report.rows.len(), "pool clamps to the point count");
        let (_, one) = run_serve_with_stats(&spec, 1).expect("serve runs");
        assert_eq!(one.workers, 1);
    }

    #[test]
    fn invalid_spec_is_rejected_not_panicked() {
        let mut spec = tiny_spec();
        spec.fleet_sizes = vec![0];
        assert!(run_serve(&spec, 2).is_err());
    }
}
