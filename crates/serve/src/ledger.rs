//! The service ledger: per-tenant frame outcomes, tail-latency
//! percentiles, deadline accounting, and fleet-wide energy rollups —
//! every number modeled, so the whole ledger is byte-stable.

use crescent_memsim::EnergyLedger;
use crescent_pointcloud::Neighbor;

/// Nearest-rank percentile over an ascending-sorted latency slice:
/// the smallest value with at least `pct`% of the samples at or below
/// it (`sorted[ceil(pct·n/100) − 1]`). `0` for an empty slice. The
/// definition the ledger's p50/p95/p99 use everywhere — integral,
/// deterministic, no interpolation.
pub fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (pct * n).div_ceil(100).max(1);
    sorted[(rank - 1).min(n - 1) as usize]
}

/// Deadline grading, in one place for the scheduler, the controller's
/// observation stream, and the edge-case tests: a frame misses iff its
/// latency strictly exceeds its budget — `latency == budget` is a hit,
/// `budget + 1` is a miss.
pub fn deadline_missed(latency: u64, budget: u64) -> bool {
    latency > budget
}

/// One fleet-wide knob decision: the `h_e` a wavefront was dispatched
/// at, with enough schedule context to reconstruct the controller's
/// whole trajectory (and the time spent at each `h_e`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnobPoint {
    /// Wavefront index (dispatch order).
    pub wavefront: usize,
    /// Dispatch cycle.
    pub start: u64,
    /// The `h_e` the wavefront ran at.
    pub h_e: usize,
    /// The wavefront's dispatch-to-completion latency — the cycles the
    /// fleet actually spent *at* this `h_e`.
    pub latency: u64,
}

/// Outcome of one tenant frame at the service.
#[derive(Clone, Debug)]
pub struct FrameOutcome {
    /// Tenant frame index (== service tick of its arrival).
    pub frame: usize,
    /// Arrival cycle (`frame · period + phase`).
    pub arrival: u64,
    /// Whether admission control accepted the frame. A rejected frame
    /// has no schedule, no results, and zeroed cycle fields; it counts
    /// in `rejected`, never in the latency distribution.
    pub admitted: bool,
    /// The wavefront that served the frame (admitted frames only).
    pub wavefront: Option<usize>,
    /// The fleet instance that executed that wavefront.
    pub instance: Option<usize>,
    /// Dispatch cycle of the wavefront.
    pub start: u64,
    /// Completion cycle (wavefront start + slot + pipeline fill).
    pub completion: u64,
    /// `completion − arrival`: queueing + batching + execution.
    pub latency: u64,
    /// Queries the frame contributed to its wavefront.
    pub queries: usize,
    /// Neighbors returned to this frame.
    pub neighbors: usize,
    /// Whether `latency` exceeded the tenant's deadline (the frame is
    /// still answered; misses are graded, not enforced by dropping).
    /// Graded by [`deadline_missed`].
    pub missed: bool,
    /// The `h_e` the frame's wavefront ran at (0 for rejected frames) —
    /// the per-tenant half of the knob trajectory.
    pub h_e: usize,
}

/// One tenant's view of the service run.
#[derive(Clone, Debug)]
pub struct TenantLedger {
    /// Tenant name (from the [`crescent::tenant::TenantSpec`]).
    pub name: String,
    /// Scenario label of the tenant's workload.
    pub scenario: String,
    /// Arrival phase within the service period, echoed for the report.
    pub arrival_phase: u64,
    /// The tenant's per-frame latency budget.
    pub deadline_cycles: u64,
    /// Per-frame outcomes, in frame order.
    pub frames: Vec<FrameOutcome>,
    /// Energy attributed to this tenant: its proportional (by query
    /// share) slice of every wavefront it rode.
    pub energy: EnergyLedger,
}

impl TenantLedger {
    /// Admitted frame count.
    pub fn admitted(&self) -> usize {
        self.frames.iter().filter(|f| f.admitted).count()
    }

    /// Rejected frame count.
    pub fn rejected(&self) -> usize {
        self.frames.len() - self.admitted()
    }

    /// Deadline misses among admitted frames.
    pub fn deadline_misses(&self) -> usize {
        self.frames.iter().filter(|f| f.missed).count()
    }

    /// Ascending latencies of the admitted frames.
    pub fn latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> =
            self.frames.iter().filter(|f| f.admitted).map(|f| f.latency).collect();
        v.sort_unstable();
        v
    }

    /// Nearest-rank latency percentile over the admitted frames.
    pub fn latency_percentile(&self, pct: u64) -> u64 {
        percentile(&self.latencies(), pct)
    }

    /// Total queries answered for this tenant.
    pub fn queries(&self) -> usize {
        self.frames.iter().map(|f| f.queries).sum()
    }

    /// Total neighbors returned to this tenant.
    pub fn neighbors(&self) -> usize {
        self.frames.iter().map(|f| f.neighbors).sum()
    }

    /// The deepest `h_e` any of this tenant's admitted frames was served
    /// at — the tenant-level recall-exposure headline (0 = every answer
    /// exact).
    pub fn max_h_e(&self) -> usize {
        self.frames.iter().filter(|f| f.admitted).map(|f| f.h_e).max().unwrap_or(0)
    }
}

/// Per-instance rollup of the fleet.
#[derive(Clone, Copy, Debug, Default)]
pub struct InstanceReport {
    /// Wavefronts the instance executed.
    pub wavefronts: usize,
    /// Cycles the instance spent occupied (slots + fills).
    pub busy_cycles: u64,
    /// When the instance went idle for good.
    pub free_at: u64,
}

/// The full service run ledger: per-tenant outcomes plus fleet-wide
/// scheduling and energy totals.
#[derive(Clone, Debug, Default)]
pub struct ServiceLedger {
    /// Per-tenant ledgers, in tenant-mix order.
    pub tenants: Vec<TenantLedger>,
    /// Per-instance rollups, in fleet order.
    pub instances: Vec<InstanceReport>,
    /// Total wavefronts dispatched.
    pub wavefronts: usize,
    /// Wavefronts that batched more than one tenant (the cross-tenant
    /// amortization actually firing).
    pub shared_wavefronts: usize,
    /// Amortized top-tree fetches across all wavefronts.
    pub top_fetches: u64,
    /// What per-query routing would have fetched.
    pub top_fetches_unamortized: u64,
    /// Completion cycle of the last wavefront.
    pub makespan: u64,
    /// Energy of shared map maintenance (builds/refits + their DMA and
    /// leakage), charged fleet-wide — no tenant owns the map.
    pub map_energy: EnergyLedger,
    /// Exact sum of every wavefront's energy (the per-tenant ledgers
    /// are a proportional attribution of this same quantity).
    pub search_energy: EnergyLedger,
    /// The fleet-wide knob trajectory: one entry per wavefront in
    /// dispatch order — constant under a static run, the controller's
    /// decision record under SLO control.
    pub knob_trajectory: Vec<KnobPoint>,
    /// Conflicted banked-SRAM fetches elided across all wavefronts —
    /// with [`Self::nodes_skipped`], the recall proxy that prices the
    /// controller's latency savings.
    pub conflicts_elided: u64,
    /// Tree nodes made unreachable by those elisions (each one a
    /// potential neighbor never examined).
    pub nodes_skipped: u64,
    /// Elided fetches the banked arbiter salvaged through descendant
    /// reuse (only possible at `h_e > 0`).
    pub conflict_reuses: u64,
    /// Map-maintenance slot cycles actually charged, after the
    /// controller's per-tick policy choice.
    pub map_build_cycles: u64,
    /// Ticks whose maintenance the controller re-pointed at the
    /// alternate (cheaper) policy.
    pub alt_maintenance_ticks: usize,
    /// FNV-1a digest over every tenant's neighbor sets in (tenant,
    /// frame, query) order — the one-number result identity the CI
    /// baseline locks down.
    pub digest: u64,
}

impl ServiceLedger {
    /// Admitted frames across all tenants.
    pub fn admitted(&self) -> usize {
        self.tenants.iter().map(TenantLedger::admitted).sum()
    }

    /// Rejected frames across all tenants.
    pub fn rejected(&self) -> usize {
        self.tenants.iter().map(TenantLedger::rejected).sum()
    }

    /// Deadline misses across all tenants.
    pub fn deadline_misses(&self) -> usize {
        self.tenants.iter().map(TenantLedger::deadline_misses).sum()
    }

    /// Ascending latencies of every admitted frame, fleet-wide.
    pub fn fleet_latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .tenants
            .iter()
            .flat_map(|t| t.frames.iter().filter(|f| f.admitted).map(|f| f.latency))
            .collect();
        v.sort_unstable();
        v
    }

    /// Fleet-wide nearest-rank latency percentile.
    pub fn latency_percentile(&self, pct: u64) -> u64 {
        percentile(&self.fleet_latencies(), pct)
    }

    /// Map maintenance + search energy: everything the service spent.
    pub fn total_energy(&self) -> EnergyLedger {
        EnergyLedger::merged([&self.map_energy, &self.search_energy])
    }

    /// Cross-tenant top-tree amortization factor (unamortized /
    /// amortized fetches; `1.0` when no fetches happened).
    pub fn amortization_factor(&self) -> f64 {
        if self.top_fetches == 0 {
            1.0
        } else {
            self.top_fetches_unamortized as f64 / self.top_fetches as f64
        }
    }

    /// The `h_e` in force at the end of the run: the last knob decision,
    /// or 0 if no wavefront was dispatched.
    pub fn final_h_e(&self) -> usize {
        self.knob_trajectory.last().map(|k| k.h_e).unwrap_or(0)
    }

    /// Fleet cycles spent at each `h_e`, as ascending `(h_e, cycles)`
    /// pairs — the time-at-each-`h_e` histogram of the knob trajectory
    /// (a static run has exactly one entry).
    pub fn time_at_h_e(&self) -> Vec<(usize, u64)> {
        let mut hist = std::collections::BTreeMap::new();
        for k in &self.knob_trajectory {
            *hist.entry(k.h_e).or_insert(0u64) += k.latency;
        }
        hist.into_iter().collect()
    }

    /// Mean fraction of the makespan the fleet's instances were busy.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.instances.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.instances.iter().map(|i| i.busy_cycles).sum();
        busy as f64 / (self.makespan as f64 * self.instances.len() as f64)
    }
}

/// FNV-1a digest of per-tenant service results: eats, per tenant, per
/// frame, either a rejection marker or every query's neighbor count,
/// indices, and distance bits. Two runs produce the same digest iff
/// they returned bit-identical neighbor sets with identical admission
/// outcomes.
pub fn digest_results(results: &[Vec<Option<Vec<Vec<Neighbor>>>>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: &mut u64, v: u64) {
        for byte in v.to_le_bytes() {
            *h ^= byte as u64;
            *h = h.wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    for (tenant, frames) in results.iter().enumerate() {
        eat(&mut h, tenant as u64);
        for frame in frames {
            match frame {
                None => eat(&mut h, u64::MAX),
                Some(queries) => {
                    eat(&mut h, queries.len() as u64);
                    for hits in queries {
                        eat(&mut h, hits.len() as u64);
                        for n in hits {
                            eat(&mut h, n.index as u64);
                            eat(&mut h, n.dist2.to_bits() as u64);
                        }
                    }
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v = [10u64, 20, 30, 40];
        assert_eq!(percentile(&v, 50), 20);
        assert_eq!(percentile(&v, 95), 40);
        assert_eq!(percentile(&v, 99), 40);
        assert_eq!(percentile(&v, 100), 40);
        assert_eq!(percentile(&v, 1), 10);
        assert_eq!(percentile(&v, 0), 10, "pct 0 clamps to the first sample");
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
        // 100 samples: p99 is the 99th value, not the max
        let big: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&big, 50), 50);
        assert_eq!(percentile(&big, 99), 99);
    }

    fn frame(admitted: bool, latency: u64, missed: bool) -> FrameOutcome {
        FrameOutcome {
            frame: 0,
            arrival: 0,
            admitted,
            wavefront: admitted.then_some(0),
            instance: admitted.then_some(0),
            start: 0,
            completion: latency,
            latency,
            queries: if admitted { 4 } else { 0 },
            neighbors: if admitted { 9 } else { 0 },
            missed,
            h_e: 0,
        }
    }

    fn tenant(frames: Vec<FrameOutcome>) -> TenantLedger {
        TenantLedger {
            name: "t00-sweep".into(),
            scenario: "sweep".into(),
            arrival_phase: 0,
            deadline_cycles: 100,
            frames,
            energy: EnergyLedger::new(),
        }
    }

    #[test]
    fn single_and_two_sample_percentiles() {
        // nearest-rank on degenerate tenants: 1 sample answers every
        // percentile; 2 samples put p50 on the first and p95/p99 on the
        // second
        let one = tenant(vec![frame(true, 42, false)]);
        assert_eq!(one.latencies(), vec![42]);
        for pct in [50, 95, 99] {
            assert_eq!(one.latency_percentile(pct), 42, "p{pct} of one sample is that sample");
        }
        let two = tenant(vec![frame(true, 70, false), frame(true, 30, false)]);
        assert_eq!(two.latencies(), vec![30, 70], "latencies sort ascending");
        assert_eq!(two.latency_percentile(50), 30, "rank ceil(50·2/100) = 1");
        assert_eq!(two.latency_percentile(95), 70, "rank ceil(95·2/100) = 2");
        assert_eq!(two.latency_percentile(99), 70);
    }

    #[test]
    fn deadline_grading_at_the_exact_boundary() {
        // latency == budget is a hit; one cycle over is a miss
        assert!(!deadline_missed(9_000, 9_000));
        assert!(deadline_missed(9_001, 9_000));
        assert!(!deadline_missed(0, 0));
        assert!(deadline_missed(1, 0));
        assert!(!deadline_missed(u64::MAX, u64::MAX));
    }

    #[test]
    fn knob_trajectory_histogram_and_final_h_e() {
        let knob = |wavefront, start, h_e, latency| KnobPoint { wavefront, start, h_e, latency };
        let ledger = ServiceLedger {
            knob_trajectory: vec![
                knob(0, 0, 0, 100),
                knob(1, 100, 1, 250),
                knob(2, 350, 1, 150),
                knob(3, 500, 0, 80),
            ],
            ..ServiceLedger::default()
        };
        assert_eq!(ledger.final_h_e(), 0);
        assert_eq!(ledger.time_at_h_e(), vec![(0, 180), (1, 400)]);
        assert_eq!(ServiceLedger::default().final_h_e(), 0, "no dispatches, exact by default");
        assert!(ServiceLedger::default().time_at_h_e().is_empty());
    }

    #[test]
    fn max_h_e_covers_only_admitted_frames() {
        let mut deep = frame(true, 10, false);
        deep.h_e = 3;
        let mut rejected_deep = frame(false, 0, false);
        rejected_deep.h_e = 7; // never happens in the scheduler, but must not leak
        let t = tenant(vec![frame(true, 10, false), deep, rejected_deep]);
        assert_eq!(t.max_h_e(), 3);
        assert_eq!(tenant(vec![]).max_h_e(), 0);
    }

    #[test]
    fn tenant_ledger_counts_and_percentiles() {
        let t = tenant(vec![
            frame(true, 50, false),
            frame(true, 200, true),
            frame(false, 0, false),
            frame(true, 80, false),
        ]);
        assert_eq!(t.admitted(), 3);
        assert_eq!(t.rejected(), 1);
        assert_eq!(t.deadline_misses(), 1);
        assert_eq!(t.latencies(), vec![50, 80, 200]);
        assert_eq!(t.latency_percentile(50), 80);
        assert_eq!(t.latency_percentile(99), 200);
        assert_eq!(t.queries(), 12);
        assert_eq!(t.neighbors(), 27);
    }

    #[test]
    fn service_ledger_rolls_up_tenants() {
        let ledger = ServiceLedger {
            tenants: vec![
                tenant(vec![frame(true, 10, false), frame(false, 0, false)]),
                tenant(vec![frame(true, 90, true)]),
            ],
            instances: vec![InstanceReport { wavefronts: 2, busy_cycles: 50, free_at: 100 }],
            wavefronts: 2,
            shared_wavefronts: 1,
            top_fetches: 10,
            top_fetches_unamortized: 40,
            makespan: 100,
            ..ServiceLedger::default()
        };
        assert_eq!(ledger.admitted(), 2);
        assert_eq!(ledger.rejected(), 1);
        assert_eq!(ledger.deadline_misses(), 1);
        assert_eq!(ledger.fleet_latencies(), vec![10, 90]);
        assert_eq!(ledger.latency_percentile(50), 10);
        assert_eq!(ledger.latency_percentile(99), 90);
        assert!((ledger.amortization_factor() - 4.0).abs() < 1e-12);
        assert!((ledger.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(ServiceLedger::default().amortization_factor(), 1.0);
        assert_eq!(ServiceLedger::default().utilization(), 0.0);
    }

    #[test]
    fn digest_separates_rejections_results_and_order() {
        let hit = Neighbor { index: 3, dist2: 0.25 };
        let a = vec![vec![Some(vec![vec![hit]])]];
        let b = vec![vec![None]];
        let c = vec![vec![Some(vec![vec![]])]];
        let d = vec![vec![Some(vec![vec![Neighbor { index: 3, dist2: 0.5 }]])]];
        let digests =
            [digest_results(&a), digest_results(&b), digest_results(&c), digest_results(&d)];
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "cases {i} and {j} must differ");
            }
        }
        assert_eq!(digest_results(&a), digest_results(&a), "digest is deterministic");
    }
}
