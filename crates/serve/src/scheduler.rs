//! The deterministic multi-tenant scheduler: admission control,
//! deadline-aware (EDF) dispatch, cross-tenant wavefront batching
//! over a modeled accelerator fleet — and, since `crescent-serve/v2`,
//! the observe→decide→act hook where the SLO controller
//! ([`crate::controller`]) steps `h_e` per wavefront.
//!
//! # Service model
//!
//! The service hosts one **shared world map** — its own seeded
//! [`FrameStream`] — whose K-d tree is maintained once per service tick
//! through [`maintain_tree_sequence`] (the same honest build/refit cost
//! model the single-stream driver uses). Tick `t` covers modeled cycles
//! `[t·period, (t+1)·period)` and every wavefront dispatched for tick
//! `t` searches tree `t` (maintenance is modeled as double-buffered:
//! its cycles and energy are charged fleet-wide, but the tick's tree is
//! ready at the tick boundary).
//!
//! Each **tenant** is a seeded [`FrameStream`] acting as a query
//! generator: frame `k` of tenant `i` arrives at `k·period + phase_i`
//! and contributes its queries. The scheduler:
//!
//! 1. **admits** a frame iff fewer than `max_backlog` admitted frames
//!    are still queued (rejected frames are recorded, never silently
//!    dropped);
//! 2. picks the pending frame with the **earliest absolute deadline**
//!    (ties: arrival, then tenant, then frame index — fully ordered, so
//!    dispatch is deterministic);
//! 3. consults the knob policy: a static run pins `h_e`; an SLO run
//!    **observes** every frame graded by the dispatch cycle, then
//!    **decides** the wavefront's `h_e` from miss/backlog/storm
//!    pressure ([`Controller::decide`]);
//! 4. batches **every queued frame of the same tick that has already
//!    arrived** into one tenant-tagged wavefront
//!    ([`TaggedBatch`]) on the earliest-free instance — this is where
//!    cross-tenant top-tree amortization happens — **acting** the
//!    decision through the per-dispatch override
//!    [`ServiceInstance::run_wavefront_at`](crescent_accel::ServiceInstance::run_wavefront_at);
//! 5. grades each served frame against its tenant's deadline
//!    ([`deadline_missed`]).
//!
//! A wavefront runs with descendant reuse enabled iff one of its riders
//! is a reuse-scenario tenant — inert at `h_e = 0`, so the exactness
//! invariant below survives.
//!
//! After the drain, each tick's maintenance bill is settled: a static
//! run always pays the spec policy, while an SLO run that was holding
//! `h_e > 0` as a tick began pays whichever policy (spec or its
//! alternate) has the cheaper slot — shedding maintenance cost during
//! the same pressure that ramped elision. Either way the **tree content
//! is identical** (a clean refit provably reproduces the fresh build),
//! so the policy choice moves cycles and energy, never answers.
//!
//! Because the engine is tag-blind ([`SplitTree::search_batch_tagged`]
//! runs the flat concatenated batch), results at `h_e = 0` are
//! bit-identical to running each tenant alone — co-tenants move
//! *cycles*, never *answers*. The whole simulation is a pure function
//! of `(context, tenants, fleet, h_e, controller)`: no wall-clock, no
//! map ordering, no randomness.
//!
//! [`SplitTree::search_batch_tagged`]: crescent_kdtree::SplitTree::search_batch_tagged

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crescent::tenant::{mixed_tenants, TenantSpec};
use crescent::workload::FrameStream;
use crescent_accel::{
    maintain_tree_sequence, AcceleratorConfig, CrescentKnobs, Fleet, MaintainedTree,
    StreamSearchConfig, TreeMaintenance,
};
use crescent_kdtree::TaggedBatch;
use crescent_memsim::EnergyLedger;
use crescent_pointcloud::{Neighbor, Point3, PointCloud};

use crate::controller::{h_e_in_effect, Controller, ControllerConfig};
use crate::ledger::{
    deadline_missed, digest_results, FrameOutcome, InstanceReport, KnobPoint, ServiceLedger,
    TenantLedger,
};
use crate::spec::ServeSpec;

/// Sustained DRAM streaming bandwidth of the service operating point,
/// in bytes per cycle (an HBM-class part, 8× the explorer's default
/// LPDDR-class 20.48 B/cycle). The serve layer pins this deliberately:
/// under the default bandwidth every quick-grid wavefront is DMA-bound,
/// so the elision knob `h_e` cannot move latency at all and the SLO
/// controller would have nothing to trade. At this operating point the
/// wavefronts are compute-bound and elision buys real slot cycles.
pub const SERVICE_STREAM_BYTES_PER_CYCLE: f64 = 163.84;

/// Per-tick cost of one maintenance policy (the fields of
/// [`MaintainedTree`] that price it; the tree content is policy-
/// independent by the refit invariant).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaintenanceCost {
    /// Modeled maintenance cycles (full build or refit work).
    pub build_cycles: u64,
    /// DRAM bytes the maintenance streamed.
    pub build_dram_bytes: u64,
}

/// Everything about a serve spec that does **not** vary across grid
/// points: the maintained map tree sequence, the canonical tenant mix
/// at its largest size, and every tenant's per-tick query sets. Built
/// once ([`ServiceContext::build`]) and shared by reference across the
/// whole grid — a grid point only picks how many tenants, how many
/// instances, which `h_e`, and which knob policy.
#[derive(Debug)]
pub struct ServiceContext {
    /// One maintained map tree per service tick (built under the spec's
    /// maintenance policy, which also prices the default bill).
    pub trees: Vec<MaintainedTree>,
    /// Per-tick cost of the *alternate* maintenance policy (refit if
    /// the spec rebuilds, rebuild if the spec refits) — the option the
    /// controller may switch a tick to under pressure. Same trees
    /// either way; only the bill differs.
    pub alt_maintenance: Vec<MaintenanceCost>,
    /// The canonical tenant mix (a grid point uses a prefix).
    pub tenants: Vec<TenantSpec>,
    /// Per-tenant, per-tick query sets.
    pub queries: Vec<Vec<Vec<Point3>>>,
    /// Modeled cycles per service tick.
    pub frame_period: u64,
    /// Admission bound (queued frames).
    pub max_backlog: usize,
    /// Granted top-tree height `h_t`.
    pub top_height: usize,
    /// Search radius (from the tenant base workload).
    pub radius: f32,
    /// Per-query neighbor cap (from the tenant base workload).
    pub max_neighbors: Option<usize>,
}

impl ServiceContext {
    /// Builds the context for `spec` at its largest tenant count.
    pub fn build(spec: &ServeSpec) -> ServiceContext {
        ServiceContext::build_for(spec, spec.max_tenants())
    }

    /// Builds the context with exactly `tenant_count` tenants.
    pub fn build_for(spec: &ServeSpec, tenant_count: usize) -> ServiceContext {
        let map_frames: Vec<_> = FrameStream::new(&spec.map).collect();
        let clouds: Vec<&PointCloud> = map_frames.iter().map(|f| &f.cloud).collect();
        let trees = maintain_tree_sequence(&clouds, spec.map.maintenance, spec.top_height);
        let alt_policy = match spec.map.maintenance {
            TreeMaintenance::RebuildEveryFrame => TreeMaintenance::refit(),
            TreeMaintenance::Refit { .. } => TreeMaintenance::RebuildEveryFrame,
        };
        let alt_maintenance = maintain_tree_sequence(&clouds, alt_policy, spec.top_height)
            .into_iter()
            .map(|t| MaintenanceCost {
                build_cycles: t.build_cycles,
                build_dram_bytes: t.build_dram_bytes,
            })
            .collect();
        let mut base = spec.tenant_base;
        base.num_frames = spec.map.num_frames;
        let tenants = mixed_tenants(tenant_count, &base, spec.frame_period, spec.base_deadline);
        let queries = tenants
            .iter()
            .map(|t| FrameStream::new(&t.workload).map(|f| f.queries).collect())
            .collect();
        ServiceContext {
            trees,
            alt_maintenance,
            tenants,
            queries,
            frame_period: spec.frame_period,
            max_backlog: spec.max_backlog,
            top_height: spec.top_height,
            radius: spec.tenant_base.radius,
            max_neighbors: spec.tenant_base.max_neighbors,
        }
    }

    /// Number of service ticks.
    pub fn ticks(&self) -> usize {
        self.trees.len()
    }
}

/// Result of one service run: the ledger plus every tenant's raw
/// neighbor sets (`None` for rejected frames), in tenant-mix order.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The graded service ledger.
    pub ledger: ServiceLedger,
    /// `results[tenant][frame]`: per-query neighbor lists of each
    /// admitted frame, `None` where admission control rejected it.
    pub results: Vec<Vec<Option<Vec<Vec<Neighbor>>>>>,
}

/// One tenant frame queued at the service.
struct Job {
    tenant: usize,
    /// Frame index == service tick of its arrival.
    frame: usize,
    arrival: u64,
    deadline_at: u64,
}

/// Runs the service for the first `tenants` tenants of `ctx` on a
/// fleet of `fleet_size` instances at the **pinned** elision depth
/// `elision_depth` — the `crescent-serve/v1` static path, byte-for-byte.
///
/// Deterministic by construction: a pure function of its arguments.
///
/// # Panics
///
/// Panics if `tenants` exceeds the context's mix or `fleet_size` is 0.
pub fn run_service(
    ctx: &ServiceContext,
    tenants: usize,
    fleet_size: usize,
    elision_depth: usize,
) -> ServiceOutcome {
    run_service_impl(ctx, tenants, fleet_size, elision_depth, None)
}

/// Runs the service under the SLO feedback controller: `h_e` starts at
/// `initial_h_e` (clamped into `cfg`'s band) and is re-decided before
/// every wavefront dispatch; tree maintenance may be re-pointed at the
/// cheaper policy for ticks that began under pressure. As deterministic
/// as [`run_service`] — the controller is pure integer state.
///
/// # Panics
///
/// Panics on the same inputs as [`run_service`], and if `cfg` fails
/// [`ControllerConfig::validate`].
pub fn run_service_controlled(
    ctx: &ServiceContext,
    tenants: usize,
    fleet_size: usize,
    initial_h_e: usize,
    cfg: &ControllerConfig,
) -> ServiceOutcome {
    if let Err(err) = cfg.validate() {
        panic!("invalid controller config: {err}");
    }
    run_service_impl(ctx, tenants, fleet_size, initial_h_e, Some(*cfg))
}

fn run_service_impl(
    ctx: &ServiceContext,
    tenants: usize,
    fleet_size: usize,
    elision_depth: usize,
    control: Option<ControllerConfig>,
) -> ServiceOutcome {
    assert!(tenants <= ctx.tenants.len(), "context holds only {} tenants", ctx.tenants.len());
    assert!(fleet_size >= 1, "a service needs at least one instance");
    let ticks = ctx.ticks();
    let period = ctx.frame_period;

    // ---- arrival schedule ----
    let mut events: Vec<Job> = Vec::with_capacity(tenants * ticks);
    for (ti, t) in ctx.tenants[..tenants].iter().enumerate() {
        for frame in 0..ctx.queries[ti].len().min(ticks) {
            events.push(Job {
                tenant: ti,
                frame,
                arrival: t.arrival_at(frame, period),
                deadline_at: t.deadline_at(frame, period),
            });
        }
    }
    events.sort_by_key(|j| (j.arrival, j.tenant, j.frame));

    // ---- engine configuration ----
    // The wavefront path reads banking, PE count, DRAM bandwidth, and
    // the aggregation-elision flag; search elision comes from the
    // per-dispatch h_e override, so `search_elision` stays unset.
    // Aggregation elision on = the ANS+BCE service operating point.
    let config = AcceleratorConfig::builder()
        .aggregation_elision(true)
        .dram_stream_bytes_per_cycle(SERVICE_STREAM_BYTES_PER_CYCLE)
        .build()
        .expect("the default-based service config is valid");
    let knobs = CrescentKnobs { top_height: ctx.top_height, ..CrescentKnobs::default() };
    let search = StreamSearchConfig {
        radius: ctx.radius,
        max_neighbors: ctx.max_neighbors,
        elision_depth,
        ..StreamSearchConfig::default()
    };

    // Per-tick maintenance slots under the spec policy: the storm
    // signal (a tick whose maintenance fills a whole period) the
    // controller reads at decide time. Signal only — the bill is
    // settled after the drain, once the knob trajectory is known.
    let spec_slots: Vec<u64> = ctx
        .trees
        .iter()
        .map(|t| t.build_cycles.max(config.dram.stream_cycles(t.build_dram_bytes)))
        .collect();

    // ---- the scheduler loop ----
    let mut controller = control.map(|cfg| Controller::new(cfg, elision_depth));
    let mut fleet = Fleet::new(fleet_size);
    let mut results: Vec<Vec<Option<Vec<Vec<Neighbor>>>>> =
        (0..tenants).map(|ti| vec![None; ctx.queries[ti].len().min(ticks)]).collect();
    let mut outcomes: Vec<Vec<Option<FrameOutcome>>> =
        results.iter().map(|f| vec![None; f.len()]).collect();
    let mut tenant_energy = vec![EnergyLedger::new(); tenants];
    let mut search_energy = EnergyLedger::new();
    let (mut wavefronts, mut shared_wavefronts) = (0usize, 0usize);
    let (mut top_fetches, mut top_fetches_unamortized) = (0u64, 0u64);
    let (mut conflicts_elided, mut nodes_skipped, mut conflict_reuses) = (0u64, 0u64, 0u64);
    let mut knob_trajectory: Vec<KnobPoint> = Vec::new();
    let mut makespan = 0u64;

    let mut pending: Vec<Job> = Vec::new();
    let mut batch = TaggedBatch::new();
    let mut arrivals = events.into_iter().peekable();
    // frames graded but not yet observed by the controller, ordered by
    // completion (ties: tenant, then frame — fully deterministic)
    let mut graded: BinaryHeap<Reverse<(u64, usize, usize, bool)>> = BinaryHeap::new();

    loop {
        // Dispatch while a wavefront would start before the next
        // arrival; otherwise process that arrival first (it may still
        // join the wave, and its admission check must see the backlog
        // as of its arrival time).
        let next_arrival = arrivals.peek().map(|j| j.arrival);
        let mut dispatched = false;
        if !pending.is_empty() {
            let (inst_idx, free) = fleet.earliest_free().expect("fleet is non-empty");
            // deadline-aware dispatch: earliest absolute deadline leads
            let lead = pending
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.deadline_at, j.arrival, j.tenant, j.frame))
                .map(|(i, _)| i)
                .expect("pending is non-empty");
            let tick = pending[lead].frame;
            let start = free.max(pending[lead].arrival);
            let starts_before_next = match next_arrival {
                None => true,
                Some(a) => start < a,
            };
            if starts_before_next {
                // observe → decide: absorb every frame whose wavefront
                // completed by this dispatch cycle (strictly causal),
                // then step h_e from miss/backlog/storm pressure. A
                // static run skips straight to the pinned depth.
                let h_e = match controller.as_mut() {
                    None => elision_depth,
                    Some(c) => {
                        while let Some(&Reverse((done, _, _, missed))) = graded.peek() {
                            if done > start {
                                break;
                            }
                            graded.pop();
                            c.observe(missed);
                        }
                        let storm = spec_slots[tick] >= period;
                        c.decide(pending.len(), storm)
                    }
                };
                // the wavefront: every queued same-tick frame that has
                // arrived by the start cycle, in EDF order
                let mut wave: Vec<Job> = Vec::new();
                let mut i = 0;
                while i < pending.len() {
                    if pending[i].frame == tick && pending[i].arrival <= start {
                        wave.push(pending.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                wave.sort_by_key(|j| (j.deadline_at, j.arrival, j.tenant, j.frame));
                batch.clear();
                for job in &wave {
                    batch.push_segment(job.tenant as u64, &ctx.queries[job.tenant][job.frame]);
                }
                // act: the decided h_e rides the per-dispatch override;
                // descendant reuse switches on iff a reuse-scenario
                // tenant is aboard (inert at h_e = 0)
                let reuse =
                    wave.iter().any(|j| ctx.tenants[j.tenant].workload.scenario.descendant_reuse());
                let wf_search = StreamSearchConfig { descendant_reuse: reuse, ..search };
                let instance = fleet.instance_mut(inst_idx);
                let (tagged, wf) = instance.run_wavefront_at(
                    &ctx.trees[tick].tree,
                    &batch,
                    &wf_search,
                    h_e,
                    knobs,
                    &config,
                );
                let done = start + wf.latency_cycles;
                instance.free_at = done;
                makespan = makespan.max(done);

                let wave_id = wavefronts;
                wavefronts += 1;
                if wave.len() > 1 {
                    shared_wavefronts += 1;
                }
                top_fetches += wf.search.top_fetches as u64;
                top_fetches_unamortized += wf.search.top_fetches_unamortized as u64;
                conflicts_elided += wf.search.conflicts_elided as u64;
                nodes_skipped += wf.search.nodes_skipped as u64;
                conflict_reuses += wf.search.conflict_reuses as u64;
                knob_trajectory.push(KnobPoint {
                    wavefront: wave_id,
                    start,
                    h_e,
                    latency: wf.latency_cycles,
                });
                search_energy.merge(&wf.energy);
                let total_queries = wf.queries.max(1);
                for (job, (tag, seg)) in wave.iter().zip(tagged) {
                    debug_assert_eq!(tag, job.tenant as u64);
                    let share = seg.len() as f64 / total_queries as f64;
                    tenant_energy[job.tenant].merge(&wf.energy.scaled(share));
                    let latency = done - job.arrival;
                    let missed = deadline_missed(latency, ctx.tenants[job.tenant].deadline_cycles);
                    debug_assert_eq!(missed, done > job.deadline_at);
                    graded.push(Reverse((done, job.tenant, job.frame, missed)));
                    outcomes[job.tenant][job.frame] = Some(FrameOutcome {
                        frame: job.frame,
                        arrival: job.arrival,
                        admitted: true,
                        wavefront: Some(wave_id),
                        instance: Some(inst_idx),
                        start,
                        completion: done,
                        latency,
                        queries: seg.len(),
                        neighbors: seg.iter().map(Vec::len).sum(),
                        missed,
                        h_e,
                    });
                    results[job.tenant][job.frame] = Some(seg);
                }
                dispatched = true;
            }
        }
        if !dispatched {
            match arrivals.next() {
                Some(job) => {
                    if pending.len() >= ctx.max_backlog {
                        // rejected at arrival: recorded, never served
                        outcomes[job.tenant][job.frame] = Some(FrameOutcome {
                            frame: job.frame,
                            arrival: job.arrival,
                            admitted: false,
                            wavefront: None,
                            instance: None,
                            start: 0,
                            completion: 0,
                            latency: 0,
                            queries: 0,
                            neighbors: 0,
                            missed: false,
                            h_e: 0,
                        });
                    } else {
                        pending.push(job);
                    }
                }
                None => break,
            }
        }
    }
    debug_assert!(pending.is_empty(), "the drain loop must serve every admitted frame");

    // ---- shared map maintenance (charged fleet-wide) ----
    // Settled after the drain so the controlled path can re-choose a
    // tick's policy from the knob trajectory: a tick that began while
    // the controller held h_e > 0 pays whichever policy has the cheaper
    // slot. Strictly causal (only decisions dispatched before the tick
    // boundary count) and a no-op for static runs, which always pay the
    // spec policy — in the same per-tick order as v1, so the energy
    // sums are bit-identical.
    let traj_pairs: Vec<(u64, usize)> = knob_trajectory.iter().map(|k| (k.start, k.h_e)).collect();
    let mut map_energy = EnergyLedger::new();
    let mut map_build_cycles = 0u64;
    let mut alt_maintenance_ticks = 0usize;
    for (t, tree) in ctx.trees.iter().enumerate() {
        let alt = ctx.alt_maintenance[t];
        let alt_slot = alt.build_cycles.max(config.dram.stream_cycles(alt.build_dram_bytes));
        let under_pressure =
            controller.is_some() && h_e_in_effect(&traj_pairs, t as u64 * period).unwrap_or(0) > 0;
        let (cycles, bytes, slot) = if under_pressure && alt_slot < spec_slots[t] {
            alt_maintenance_ticks += 1;
            (alt.build_cycles, alt.build_dram_bytes, alt_slot)
        } else {
            (tree.build_cycles, tree.build_dram_bytes, spec_slots[t])
        };
        map_energy.charge_dram_streaming(&config.energy, bytes);
        map_energy.charge_tree_build(&config.energy, cycles);
        map_energy.charge_leakage(&config.energy, slot);
        map_build_cycles += slot;
    }

    // ---- ledger assembly ----
    let digest = digest_results(&results);
    let tenant_ledgers: Vec<TenantLedger> = ctx.tenants[..tenants]
        .iter()
        .enumerate()
        .map(|(ti, t)| TenantLedger {
            name: t.name.clone(),
            scenario: t.workload.scenario.label().to_string(),
            arrival_phase: t.arrival_phase,
            deadline_cycles: t.deadline_cycles,
            frames: outcomes[ti]
                .iter()
                .cloned()
                .map(|o| o.expect("every frame is either served or rejected"))
                .collect(),
            energy: tenant_energy[ti],
        })
        .collect();
    let instances = fleet
        .instances()
        .iter()
        .map(|i| InstanceReport {
            wavefronts: i.wavefronts,
            busy_cycles: i.busy_cycles,
            free_at: i.free_at,
        })
        .collect();
    ServiceOutcome {
        ledger: ServiceLedger {
            tenants: tenant_ledgers,
            instances,
            wavefronts,
            shared_wavefronts,
            top_fetches,
            top_fetches_unamortized,
            makespan,
            map_energy,
            search_energy,
            knob_trajectory,
            conflicts_elided,
            nodes_skipped,
            conflict_reuses,
            map_build_cycles,
            alt_maintenance_ticks,
            digest,
        },
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ctx() -> ServiceContext {
        let mut spec = ServeSpec::quick();
        // shrink for debug-profile unit tests
        spec.map.scene.total_points = 1_500;
        spec.map.num_frames = 4;
        spec.tenant_base.scene.total_points = 600;
        spec.tenant_base.num_frames = 4;
        spec.tenant_base.queries_per_frame = 24;
        // a tempo that queues on one instance (slots are a few hundred
        // cycles at this cloud size) with a backlog deep enough that
        // admission stays fleet-invariant for the digest comparisons
        spec.frame_period = 1_200;
        spec.base_deadline = 1_800;
        spec.max_backlog = 32;
        ServiceContext::build(&spec)
    }

    #[test]
    fn service_is_deterministic_and_conserves_frames() {
        let ctx = quick_ctx();
        let a = run_service(&ctx, 4, 2, 0);
        let b = run_service(&ctx, 4, 2, 0);
        assert_eq!(a.ledger.digest, b.ledger.digest, "same context, same digest");
        assert_eq!(a.results, b.results);
        // conservation: every frame either served once or rejected
        let total_frames: usize = a.ledger.tenants.iter().map(|t| t.frames.len()).sum();
        assert_eq!(total_frames, 4 * ctx.ticks());
        assert_eq!(a.ledger.admitted() + a.ledger.rejected(), total_frames);
        for (t, tr) in a.ledger.tenants.iter().zip(&a.results) {
            for (f, r) in t.frames.iter().zip(tr) {
                assert_eq!(f.admitted, r.is_some(), "results track admission");
                if let Some(r) = r {
                    assert_eq!(f.queries, r.len(), "one answer per admitted query");
                }
            }
        }
        assert!(a.ledger.wavefronts > 0);
        assert!(a.ledger.makespan > 0);
        // the static knob trajectory is one pinned entry per wavefront
        assert_eq!(a.ledger.knob_trajectory.len(), a.ledger.wavefronts);
        assert!(a.ledger.knob_trajectory.iter().all(|k| k.h_e == 0));
        assert_eq!(a.ledger.alt_maintenance_ticks, 0, "static runs always pay the spec policy");
    }

    #[test]
    fn colocated_tenants_share_wavefronts_and_amortize() {
        let ctx = quick_ctx();
        let multi = run_service(&ctx, 8, 1, 0);
        assert!(
            multi.ledger.shared_wavefronts > 0,
            "an 8-tenant mix on one instance must batch cross-tenant"
        );
        assert!(multi.ledger.amortization_factor() > 1.0);
    }

    #[test]
    fn he_zero_results_match_solo_runs() {
        let ctx = quick_ctx();
        let together = run_service(&ctx, 4, 1, 0);
        // the solo reference: each admitted frame re-run through the same
        // wavefront machinery with only its own tenant in the batch
        let config = AcceleratorConfig::builder().aggregation_elision(true).build().unwrap();
        let knobs = CrescentKnobs { top_height: ctx.top_height, ..CrescentKnobs::default() };
        let mut solo = crescent_accel::ServiceInstance::new();
        let mut batch = TaggedBatch::new();
        let mut compared = 0usize;
        for (ti, per_frame) in together.results.iter().enumerate() {
            let search = StreamSearchConfig {
                radius: ctx.radius,
                max_neighbors: ctx.max_neighbors,
                elision_depth: 0,
                descendant_reuse: ctx.tenants[ti].workload.scenario.descendant_reuse(),
                ..StreamSearchConfig::default()
            };
            for (frame, res) in per_frame.iter().enumerate() {
                let Some(res) = res else { continue };
                batch.clear();
                batch.push_segment(ti as u64, &ctx.queries[ti][frame]);
                let (tagged, _) =
                    solo.run_wavefront(&ctx.trees[frame].tree, &batch, &search, knobs, &config);
                assert_eq!(&tagged[0].1, res, "h_e = 0: co-tenants must not change answers");
                compared += 1;
            }
        }
        assert!(compared > 0, "the mix must admit at least one frame");
    }

    #[test]
    fn more_fleet_never_raises_tail_latency() {
        let ctx = quick_ctx();
        let one = run_service(&ctx, 8, 1, 0);
        let two = run_service(&ctx, 8, 2, 0);
        assert!(
            two.ledger.latency_percentile(99) <= one.ledger.latency_percentile(99),
            "adding an instance must not hurt p99 under this deterministic schedule"
        );
        assert_eq!(one.ledger.digest, two.ledger.digest, "fleet size moves cycles, not answers");
    }

    #[test]
    fn controller_with_a_zero_band_is_a_no_op() {
        // band [0, 0] forces every decision to h_e = 0, so the whole
        // run — answers, schedule, energy, maintenance bill — must be
        // bit-identical to the static h_e = 0 path, even though it
        // flows through the controller machinery
        let ctx = quick_ctx();
        let cfg = ControllerConfig { h_e_max: 0, ..ControllerConfig::default() };
        let off = run_service_controlled(&ctx, 4, 1, 4, &cfg);
        let reference = run_service(&ctx, 4, 1, 0);
        assert_eq!(off.results, reference.results);
        assert_eq!(off.ledger.digest, reference.ledger.digest);
        assert_eq!(off.ledger.makespan, reference.ledger.makespan);
        assert_eq!(off.ledger.knob_trajectory, reference.ledger.knob_trajectory);
        assert_eq!(off.ledger.map_build_cycles, reference.ledger.map_build_cycles);
        assert_eq!(off.ledger.alt_maintenance_ticks, 0);
        assert_eq!(off.ledger.map_energy.total(), reference.ledger.map_energy.total());
        assert_eq!(off.ledger.search_energy.total(), reference.ledger.search_energy.total());
    }

    #[test]
    fn controlled_run_is_deterministic_and_stays_in_band() {
        let ctx = quick_ctx();
        let cfg = ControllerConfig { h_e_max: 3, ..ControllerConfig::default() };
        let a = run_service_controlled(&ctx, 8, 1, 0, &cfg);
        let b = run_service_controlled(&ctx, 8, 1, 0, &cfg);
        assert_eq!(a.ledger.knob_trajectory, b.ledger.knob_trajectory, "pure function");
        assert_eq!(a.ledger.digest, b.ledger.digest);
        assert!(a.ledger.knob_trajectory.iter().all(|k| k.h_e <= 3), "band is respected");
        // the per-frame h_e mirror matches the wavefront trajectory
        for t in &a.ledger.tenants {
            for f in t.frames.iter().filter(|f| f.admitted) {
                let k = a.ledger.knob_trajectory[f.wavefront.unwrap()];
                assert_eq!(f.h_e, k.h_e);
            }
        }
    }

    #[test]
    fn batched_reuse_tenant_fires_conflict_reuses() {
        // satellite: the canonical mix's DescendantReuse tenant must
        // actually exercise the salvage path under batched dispatch
        let ctx = quick_ctx();
        let deep = run_service(&ctx, 8, 1, 4);
        assert!(
            deep.ledger.conflict_reuses > 0,
            "8-tenant mix at h_e = 4 must salvage elided fetches fleet-wide"
        );
        let exact = run_service(&ctx, 8, 1, 0);
        assert_eq!(exact.ledger.conflict_reuses, 0, "reuse is provably inert at h_e = 0");
        assert_eq!(exact.ledger.conflicts_elided, 0);
    }

    #[test]
    #[should_panic(expected = "invalid controller config")]
    fn invalid_controller_config_is_rejected() {
        let ctx = quick_ctx();
        let cfg = ControllerConfig { backlog_unit: 0, ..ControllerConfig::default() };
        run_service_controlled(&ctx, 1, 1, 0, &cfg);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_fleet_is_rejected() {
        let ctx = quick_ctx();
        run_service(&ctx, 1, 0, 0);
    }
}
