//! The deterministic multi-tenant scheduler: admission control,
//! deadline-aware (EDF) dispatch, and cross-tenant wavefront batching
//! over a modeled accelerator fleet.
//!
//! # Service model
//!
//! The service hosts one **shared world map** — its own seeded
//! [`FrameStream`] — whose K-d tree is maintained once per service tick
//! through [`maintain_tree_sequence`] (the same honest build/refit cost
//! model the single-stream driver uses). Tick `t` covers modeled cycles
//! `[t·period, (t+1)·period)` and every wavefront dispatched for tick
//! `t` searches tree `t` (maintenance is modeled as double-buffered:
//! its cycles and energy are charged fleet-wide, but the tick's tree is
//! ready at the tick boundary).
//!
//! Each **tenant** is a seeded [`FrameStream`] acting as a query
//! generator: frame `k` of tenant `i` arrives at `k·period + phase_i`
//! and contributes its queries. The scheduler:
//!
//! 1. **admits** a frame iff fewer than `max_backlog` admitted frames
//!    are still queued (rejected frames are recorded, never silently
//!    dropped);
//! 2. picks the pending frame with the **earliest absolute deadline**
//!    (ties: arrival, then tenant, then frame index — fully ordered, so
//!    dispatch is deterministic);
//! 3. batches **every queued frame of the same tick that has already
//!    arrived** into one tenant-tagged wavefront
//!    ([`TaggedBatch`]) on the earliest-free instance — this is where
//!    cross-tenant top-tree amortization happens;
//! 4. grades each served frame against its tenant's deadline.
//!
//! Because the engine is tag-blind ([`SplitTree::search_batch_tagged`]
//! runs the flat concatenated batch), results at `h_e = 0` are
//! bit-identical to running each tenant alone — co-tenants move
//! *cycles*, never *answers*. The whole simulation is a pure function
//! of `(context, tenants, fleet, h_e)`: no wall-clock, no map ordering,
//! no randomness.
//!
//! [`SplitTree::search_batch_tagged`]: crescent_kdtree::SplitTree::search_batch_tagged

use crescent::tenant::{mixed_tenants, TenantSpec};
use crescent::workload::FrameStream;
use crescent_accel::{
    maintain_tree_sequence, AcceleratorConfig, CrescentKnobs, Fleet, MaintainedTree,
    StreamSearchConfig,
};
use crescent_kdtree::TaggedBatch;
use crescent_memsim::EnergyLedger;
use crescent_pointcloud::{Neighbor, Point3, PointCloud};

use crate::ledger::{digest_results, FrameOutcome, InstanceReport, ServiceLedger, TenantLedger};
use crate::spec::ServeSpec;

/// Everything about a serve spec that does **not** vary across grid
/// points: the maintained map tree sequence, the canonical tenant mix
/// at its largest size, and every tenant's per-tick query sets. Built
/// once ([`ServiceContext::build`]) and shared by reference across the
/// whole grid — a grid point only picks how many tenants, how many
/// instances, and which `h_e`.
#[derive(Debug)]
pub struct ServiceContext {
    /// One maintained map tree per service tick.
    pub trees: Vec<MaintainedTree>,
    /// The canonical tenant mix (a grid point uses a prefix).
    pub tenants: Vec<TenantSpec>,
    /// Per-tenant, per-tick query sets.
    pub queries: Vec<Vec<Vec<Point3>>>,
    /// Modeled cycles per service tick.
    pub frame_period: u64,
    /// Admission bound (queued frames).
    pub max_backlog: usize,
    /// Granted top-tree height `h_t`.
    pub top_height: usize,
    /// Search radius (from the tenant base workload).
    pub radius: f32,
    /// Per-query neighbor cap (from the tenant base workload).
    pub max_neighbors: Option<usize>,
}

impl ServiceContext {
    /// Builds the context for `spec` at its largest tenant count.
    pub fn build(spec: &ServeSpec) -> ServiceContext {
        ServiceContext::build_for(spec, spec.max_tenants())
    }

    /// Builds the context with exactly `tenant_count` tenants.
    pub fn build_for(spec: &ServeSpec, tenant_count: usize) -> ServiceContext {
        let map_frames: Vec<_> = FrameStream::new(&spec.map).collect();
        let clouds: Vec<&PointCloud> = map_frames.iter().map(|f| &f.cloud).collect();
        let trees = maintain_tree_sequence(&clouds, spec.map.maintenance, spec.top_height);
        let mut base = spec.tenant_base;
        base.num_frames = spec.map.num_frames;
        let tenants = mixed_tenants(tenant_count, &base, spec.frame_period, spec.base_deadline);
        let queries = tenants
            .iter()
            .map(|t| FrameStream::new(&t.workload).map(|f| f.queries).collect())
            .collect();
        ServiceContext {
            trees,
            tenants,
            queries,
            frame_period: spec.frame_period,
            max_backlog: spec.max_backlog,
            top_height: spec.top_height,
            radius: spec.tenant_base.radius,
            max_neighbors: spec.tenant_base.max_neighbors,
        }
    }

    /// Number of service ticks.
    pub fn ticks(&self) -> usize {
        self.trees.len()
    }
}

/// Result of one service run: the ledger plus every tenant's raw
/// neighbor sets (`None` for rejected frames), in tenant-mix order.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The graded service ledger.
    pub ledger: ServiceLedger,
    /// `results[tenant][frame]`: per-query neighbor lists of each
    /// admitted frame, `None` where admission control rejected it.
    pub results: Vec<Vec<Option<Vec<Vec<Neighbor>>>>>,
}

/// One tenant frame queued at the service.
struct Job {
    tenant: usize,
    /// Frame index == service tick of its arrival.
    frame: usize,
    arrival: u64,
    deadline_at: u64,
}

/// Runs the service for the first `tenants` tenants of `ctx` on a
/// fleet of `fleet_size` instances at elision depth `elision_depth`.
///
/// Deterministic by construction: a pure function of its arguments.
///
/// # Panics
///
/// Panics if `tenants` exceeds the context's mix or `fleet_size` is 0.
pub fn run_service(
    ctx: &ServiceContext,
    tenants: usize,
    fleet_size: usize,
    elision_depth: usize,
) -> ServiceOutcome {
    assert!(tenants <= ctx.tenants.len(), "context holds only {} tenants", ctx.tenants.len());
    assert!(fleet_size >= 1, "a service needs at least one instance");
    let ticks = ctx.ticks();
    let period = ctx.frame_period;

    // ---- arrival schedule ----
    let mut events: Vec<Job> = Vec::with_capacity(tenants * ticks);
    for (ti, t) in ctx.tenants[..tenants].iter().enumerate() {
        for frame in 0..ctx.queries[ti].len().min(ticks) {
            events.push(Job {
                tenant: ti,
                frame,
                arrival: t.arrival_at(frame, period),
                deadline_at: t.deadline_at(frame, period),
            });
        }
    }
    events.sort_by_key(|j| (j.arrival, j.tenant, j.frame));

    // ---- engine configuration ----
    // The wavefront path reads banking, PE count, DRAM bandwidth, and
    // the aggregation-elision flag; search elision comes from the
    // batch config's depth-from-leaves h_e, so `search_elision` stays
    // unset. Aggregation elision on = the ANS+BCE service operating
    // point.
    let config = AcceleratorConfig::builder()
        .aggregation_elision(true)
        .build()
        .expect("the default-based service config is valid");
    let knobs = CrescentKnobs { top_height: ctx.top_height, ..CrescentKnobs::default() };
    let search = StreamSearchConfig {
        radius: ctx.radius,
        max_neighbors: ctx.max_neighbors,
        elision_depth,
        ..StreamSearchConfig::default()
    };

    // ---- shared map maintenance (charged fleet-wide) ----
    let mut map_energy = EnergyLedger::new();
    for tree in &ctx.trees {
        let build_dma = config.dram.stream_cycles(tree.build_dram_bytes);
        let build_slot = tree.build_cycles.max(build_dma);
        map_energy.charge_dram_streaming(&config.energy, tree.build_dram_bytes);
        map_energy.charge_tree_build(&config.energy, tree.build_cycles);
        map_energy.charge_leakage(&config.energy, build_slot);
    }

    // ---- the scheduler loop ----
    let mut fleet = Fleet::new(fleet_size);
    let mut results: Vec<Vec<Option<Vec<Vec<Neighbor>>>>> =
        (0..tenants).map(|ti| vec![None; ctx.queries[ti].len().min(ticks)]).collect();
    let mut outcomes: Vec<Vec<Option<FrameOutcome>>> =
        results.iter().map(|f| vec![None; f.len()]).collect();
    let mut tenant_energy = vec![EnergyLedger::new(); tenants];
    let mut search_energy = EnergyLedger::new();
    let (mut wavefronts, mut shared_wavefronts) = (0usize, 0usize);
    let (mut top_fetches, mut top_fetches_unamortized) = (0u64, 0u64);
    let mut makespan = 0u64;

    let mut pending: Vec<Job> = Vec::new();
    let mut batch = TaggedBatch::new();
    let mut arrivals = events.into_iter().peekable();

    loop {
        // Dispatch while a wavefront would start before the next
        // arrival; otherwise process that arrival first (it may still
        // join the wave, and its admission check must see the backlog
        // as of its arrival time).
        let next_arrival = arrivals.peek().map(|j| j.arrival);
        let mut dispatched = false;
        if !pending.is_empty() {
            let (inst_idx, free) = fleet.earliest_free().expect("fleet is non-empty");
            // deadline-aware dispatch: earliest absolute deadline leads
            let lead = pending
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.deadline_at, j.arrival, j.tenant, j.frame))
                .map(|(i, _)| i)
                .expect("pending is non-empty");
            let tick = pending[lead].frame;
            let start = free.max(pending[lead].arrival);
            let starts_before_next = match next_arrival {
                None => true,
                Some(a) => start < a,
            };
            if starts_before_next {
                // the wavefront: every queued same-tick frame that has
                // arrived by the start cycle, in EDF order
                let mut wave: Vec<Job> = Vec::new();
                let mut i = 0;
                while i < pending.len() {
                    if pending[i].frame == tick && pending[i].arrival <= start {
                        wave.push(pending.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                wave.sort_by_key(|j| (j.deadline_at, j.arrival, j.tenant, j.frame));
                batch.clear();
                for job in &wave {
                    batch.push_segment(job.tenant as u64, &ctx.queries[job.tenant][job.frame]);
                }
                let instance = fleet.instance_mut(inst_idx);
                let (tagged, wf) =
                    instance.run_wavefront(&ctx.trees[tick].tree, &batch, &search, knobs, &config);
                let done = start + wf.latency_cycles;
                instance.free_at = done;
                makespan = makespan.max(done);

                let wave_id = wavefronts;
                wavefronts += 1;
                if wave.len() > 1 {
                    shared_wavefronts += 1;
                }
                top_fetches += wf.search.top_fetches as u64;
                top_fetches_unamortized += wf.search.top_fetches_unamortized as u64;
                search_energy.merge(&wf.energy);
                let total_queries = wf.queries.max(1);
                for (job, (tag, seg)) in wave.iter().zip(tagged) {
                    debug_assert_eq!(tag, job.tenant as u64);
                    let share = seg.len() as f64 / total_queries as f64;
                    tenant_energy[job.tenant].merge(&wf.energy.scaled(share));
                    outcomes[job.tenant][job.frame] = Some(FrameOutcome {
                        frame: job.frame,
                        arrival: job.arrival,
                        admitted: true,
                        wavefront: Some(wave_id),
                        instance: Some(inst_idx),
                        start,
                        completion: done,
                        latency: done - job.arrival,
                        queries: seg.len(),
                        neighbors: seg.iter().map(Vec::len).sum(),
                        missed: done > job.deadline_at,
                    });
                    results[job.tenant][job.frame] = Some(seg);
                }
                dispatched = true;
            }
        }
        if !dispatched {
            match arrivals.next() {
                Some(job) => {
                    if pending.len() >= ctx.max_backlog {
                        // rejected at arrival: recorded, never served
                        outcomes[job.tenant][job.frame] = Some(FrameOutcome {
                            frame: job.frame,
                            arrival: job.arrival,
                            admitted: false,
                            wavefront: None,
                            instance: None,
                            start: 0,
                            completion: 0,
                            latency: 0,
                            queries: 0,
                            neighbors: 0,
                            missed: false,
                        });
                    } else {
                        pending.push(job);
                    }
                }
                None => break,
            }
        }
    }
    debug_assert!(pending.is_empty(), "the drain loop must serve every admitted frame");

    // ---- ledger assembly ----
    let digest = digest_results(&results);
    let tenant_ledgers: Vec<TenantLedger> = ctx.tenants[..tenants]
        .iter()
        .enumerate()
        .map(|(ti, t)| TenantLedger {
            name: t.name.clone(),
            scenario: t.workload.scenario.label().to_string(),
            arrival_phase: t.arrival_phase,
            deadline_cycles: t.deadline_cycles,
            frames: outcomes[ti]
                .iter()
                .cloned()
                .map(|o| o.expect("every frame is either served or rejected"))
                .collect(),
            energy: tenant_energy[ti],
        })
        .collect();
    let instances = fleet
        .instances()
        .iter()
        .map(|i| InstanceReport {
            wavefronts: i.wavefronts,
            busy_cycles: i.busy_cycles,
            free_at: i.free_at,
        })
        .collect();
    ServiceOutcome {
        ledger: ServiceLedger {
            tenants: tenant_ledgers,
            instances,
            wavefronts,
            shared_wavefronts,
            top_fetches,
            top_fetches_unamortized,
            makespan,
            map_energy,
            search_energy,
            digest,
        },
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ctx() -> ServiceContext {
        let mut spec = ServeSpec::quick();
        // shrink for debug-profile unit tests
        spec.map.scene.total_points = 1_500;
        spec.map.num_frames = 4;
        spec.tenant_base.scene.total_points = 600;
        spec.tenant_base.num_frames = 4;
        spec.tenant_base.queries_per_frame = 24;
        ServiceContext::build(&spec)
    }

    #[test]
    fn service_is_deterministic_and_conserves_frames() {
        let ctx = quick_ctx();
        let a = run_service(&ctx, 4, 2, 0);
        let b = run_service(&ctx, 4, 2, 0);
        assert_eq!(a.ledger.digest, b.ledger.digest, "same context, same digest");
        assert_eq!(a.results, b.results);
        // conservation: every frame either served once or rejected
        let total_frames: usize = a.ledger.tenants.iter().map(|t| t.frames.len()).sum();
        assert_eq!(total_frames, 4 * ctx.ticks());
        assert_eq!(a.ledger.admitted() + a.ledger.rejected(), total_frames);
        for (t, tr) in a.ledger.tenants.iter().zip(&a.results) {
            for (f, r) in t.frames.iter().zip(tr) {
                assert_eq!(f.admitted, r.is_some(), "results track admission");
                if let Some(r) = r {
                    assert_eq!(f.queries, r.len(), "one answer per admitted query");
                }
            }
        }
        assert!(a.ledger.wavefronts > 0);
        assert!(a.ledger.makespan > 0);
    }

    #[test]
    fn colocated_tenants_share_wavefronts_and_amortize() {
        let ctx = quick_ctx();
        let multi = run_service(&ctx, 8, 1, 0);
        assert!(
            multi.ledger.shared_wavefronts > 0,
            "an 8-tenant mix on one instance must batch cross-tenant"
        );
        assert!(multi.ledger.amortization_factor() > 1.0);
    }

    #[test]
    fn he_zero_results_match_solo_runs() {
        let ctx = quick_ctx();
        let together = run_service(&ctx, 4, 1, 0);
        // the solo reference: each admitted frame re-run through the same
        // wavefront machinery with only its own tenant in the batch
        let config = AcceleratorConfig::builder().aggregation_elision(true).build().unwrap();
        let knobs = CrescentKnobs { top_height: ctx.top_height, ..CrescentKnobs::default() };
        let search = StreamSearchConfig {
            radius: ctx.radius,
            max_neighbors: ctx.max_neighbors,
            elision_depth: 0,
            ..StreamSearchConfig::default()
        };
        let mut solo = crescent_accel::ServiceInstance::new();
        let mut batch = TaggedBatch::new();
        let mut compared = 0usize;
        for (ti, per_frame) in together.results.iter().enumerate() {
            for (frame, res) in per_frame.iter().enumerate() {
                let Some(res) = res else { continue };
                batch.clear();
                batch.push_segment(ti as u64, &ctx.queries[ti][frame]);
                let (tagged, _) =
                    solo.run_wavefront(&ctx.trees[frame].tree, &batch, &search, knobs, &config);
                assert_eq!(&tagged[0].1, res, "h_e = 0: co-tenants must not change answers");
                compared += 1;
            }
        }
        assert!(compared > 0, "the mix must admit at least one frame");
    }

    #[test]
    fn more_fleet_never_raises_tail_latency() {
        let ctx = quick_ctx();
        let one = run_service(&ctx, 8, 1, 0);
        let two = run_service(&ctx, 8, 2, 0);
        assert!(
            two.ledger.latency_percentile(99) <= one.ledger.latency_percentile(99),
            "adding an instance must not hurt p99 under this deterministic schedule"
        );
        assert_eq!(one.ledger.digest, two.ledger.digest, "fleet size moves cycles, not answers");
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_fleet_is_rejected() {
        let ctx = quick_ctx();
        run_service(&ctx, 1, 0, 0);
    }
}
