//! The online SLO feedback controller: a deterministic, pure
//! observe→decide→act loop the scheduler consults before every wavefront
//! dispatch, closing the loop the explorer leaves open — static
//! Pareto-optimal `<h_t, h_e>` points become a knob that *moves with
//! load*.
//!
//! # Control law
//!
//! The controller watches three causal pressure signals:
//!
//! 1. **Deadline misses** — a rolling window over the last
//!    [`ControllerConfig::window`] *graded* frames (a frame is graded
//!    once its wavefront has completed at or before the next dispatch
//!    cycle, so the controller never reads the future). Misses beyond
//!    [`ControllerConfig::miss_budget`] add pressure one-for-one.
//! 2. **Backlog** — every [`ControllerConfig::backlog_unit`] frames
//!    queued at dispatch time add one unit of pressure.
//! 3. **Maintenance storms** — a tick whose map-maintenance slot is at
//!    least one full service period (a `RotationBurst`-style rebuild
//!    storm) adds one unit, so elision ramps *while* the map is
//!    expensive rather than after the misses land.
//!
//! The decision is a bounded step toward the pressure target:
//! `h_e' = clamp(min(pressure, h_e_max), h_e − 1, h_e + 1)` — at most
//! one level per wavefront, never outside `[0, h_e_max]`, decaying back
//! to `h_e = 0` (exact answers) whenever slack returns. Step-toward-
//! target is jointly monotone in (current `h_e`, pressure), which is
//! what the monotone-pressure property test in
//! `tests/serve_controller.rs` pins.
//!
//! The **act** half lives in the scheduler: the chosen `h_e` rides the
//! per-dispatch override
//! [`ServiceInstance::run_wavefront_at`](crescent_accel::ServiceInstance::run_wavefront_at),
//! and the tree-maintenance policy of a tick is re-chosen (spec policy
//! vs its alternate, whichever slot is cheaper) whenever the controller
//! was holding `h_e > 0` as the tick began — see
//! [`h_e_in_effect`]. Everything is integer arithmetic over modeled
//! cycles: same spec, same bytes, so the byte-exact serve gate covers
//! the controller like any other metric.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Which knob policy a grid point runs: the innermost serve-grid axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMode {
    /// `h_e` is pinned to the point's `elision_depth` for the whole run
    /// and maintenance follows the spec policy — byte-identical to the
    /// pre-controller (`crescent-serve/v1`) service.
    Static,
    /// The SLO controller steps `h_e` per wavefront within
    /// `[0, h_e_max]`, starting from the point's `elision_depth`.
    Slo,
}

impl ControlMode {
    /// Stable report label (`"static"` / `"slo"`).
    pub fn label(&self) -> &'static str {
        match self {
            ControlMode::Static => "static",
            ControlMode::Slo => "slo",
        }
    }
}

/// Tuning of the SLO controller, echoed (and fingerprinted) in the
/// report header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Top of the elision band: chosen `h_e` never exceeds this (and
    /// never goes below 0 — the band is `[0, h_e_max]`).
    pub h_e_max: usize,
    /// Rolling window length, in graded frames, over which misses are
    /// counted.
    pub window: usize,
    /// Misses per window the SLO tolerates before miss pressure starts.
    pub miss_budget: usize,
    /// Queued frames per unit of backlog pressure.
    pub backlog_unit: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig { h_e_max: 4, window: 8, miss_budget: 0, backlog_unit: 4 }
    }
}

impl ControllerConfig {
    /// Validates the tuning before an expensive run.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("controller window must cover at least one frame".into());
        }
        if self.backlog_unit == 0 {
            return Err("controller backlog_unit must be >= 1".into());
        }
        if self.h_e_max > 16 {
            return Err("controller h_e_max is depth-from-leaves; > 16 is degenerate".into());
        }
        Ok(())
    }
}

/// The per-run controller state: current `h_e` plus the rolling graded
/// window. One instance per service run (the fleet shares one map and
/// one SLO, so it shares one controller).
#[derive(Clone, Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    h_e: usize,
    window: VecDeque<bool>,
}

impl Controller {
    /// Creates a controller starting at `initial_h_e` (clamped into the
    /// configured band).
    pub fn new(cfg: ControllerConfig, initial_h_e: usize) -> Controller {
        Controller { h_e: initial_h_e.min(cfg.h_e_max), cfg, window: VecDeque::new() }
    }

    /// The `h_e` currently in force.
    pub fn h_e(&self) -> usize {
        self.h_e
    }

    /// Feeds one graded frame outcome (oldest evicted beyond the
    /// configured window). The scheduler calls this for every frame
    /// whose wavefront completed at or before the upcoming dispatch —
    /// strictly causal observation.
    pub fn observe(&mut self, missed: bool) {
        self.window.push_back(missed);
        while self.window.len() > self.cfg.window {
            self.window.pop_front();
        }
    }

    /// The combined pressure signal at a dispatch: windowed misses over
    /// budget + backlog units + the maintenance-storm flag.
    pub fn pressure(&self, backlog: usize, storm: bool) -> usize {
        let misses = self.window.iter().filter(|&&m| m).count();
        misses.saturating_sub(self.cfg.miss_budget)
            + backlog / self.cfg.backlog_unit
            + storm as usize
    }

    /// One decision: step `h_e` at most one level toward
    /// `min(pressure, h_e_max)` and return the new value. Jointly
    /// monotone in (current `h_e`, pressure); always inside
    /// `[0, h_e_max]`.
    pub fn decide(&mut self, backlog: usize, storm: bool) -> usize {
        let target = self.pressure(backlog, storm).min(self.cfg.h_e_max);
        let low = self.h_e.saturating_sub(1);
        let high = (self.h_e + 1).min(self.cfg.h_e_max);
        self.h_e = target.clamp(low, high);
        self.h_e
    }
}

/// The `h_e` a knob trajectory was holding as cycle `at` began: the
/// depth of the last decision dispatched strictly before `at`, or
/// `None` if no wavefront had been dispatched yet. `trajectory` is
/// `(start_cycle, h_e)` pairs in dispatch order.
///
/// This is how the scheduler re-chooses a tick's maintenance policy
/// causally: tick `t`'s tree must be ready at `t · period`, so only
/// decisions made before that boundary may influence it.
pub fn h_e_in_effect(trajectory: &[(u64, usize)], at: u64) -> Option<usize> {
    trajectory.iter().take_while(|&&(start, _)| start < at).last().map(|&(_, h_e)| h_e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_are_stable() {
        assert_eq!(ControlMode::Static.label(), "static");
        assert_eq!(ControlMode::Slo.label(), "slo");
    }

    #[test]
    fn config_validation() {
        assert!(ControllerConfig::default().validate().is_ok());
        assert!(ControllerConfig { window: 0, ..Default::default() }.validate().is_err());
        assert!(ControllerConfig { backlog_unit: 0, ..Default::default() }.validate().is_err());
        assert!(ControllerConfig { h_e_max: 17, ..Default::default() }.validate().is_err());
        assert!(ControllerConfig { h_e_max: 0, ..Default::default() }.validate().is_ok());
    }

    #[test]
    fn initial_h_e_is_clamped_into_the_band() {
        let c = Controller::new(ControllerConfig { h_e_max: 2, ..Default::default() }, 9);
        assert_eq!(c.h_e(), 2);
    }

    #[test]
    fn idle_controller_decays_to_zero_and_stays() {
        let mut c = Controller::new(ControllerConfig::default(), 4);
        let mut seen = Vec::new();
        for _ in 0..6 {
            c.observe(false);
            seen.push(c.decide(0, false));
        }
        assert_eq!(seen, vec![3, 2, 1, 0, 0, 0], "one step per decision, then pinned at 0");
    }

    #[test]
    fn sustained_misses_ramp_one_step_at_a_time_within_the_band() {
        let cfg = ControllerConfig { h_e_max: 3, ..Default::default() };
        let mut c = Controller::new(cfg, 0);
        let mut seen = Vec::new();
        for _ in 0..6 {
            c.observe(true);
            seen.push(c.decide(0, false));
        }
        assert_eq!(seen, vec![1, 2, 3, 3, 3, 3], "ramps to the band top, never beyond");
    }

    #[test]
    fn window_eviction_forgets_old_misses() {
        let cfg = ControllerConfig { window: 2, ..Default::default() };
        let mut c = Controller::new(cfg, 0);
        c.observe(true);
        c.observe(true);
        assert_eq!(c.pressure(0, false), 2);
        c.observe(false);
        c.observe(false);
        assert_eq!(c.pressure(0, false), 0, "window of 2 holds only the clean frames");
    }

    #[test]
    fn backlog_and_storm_pressure_add_up() {
        let cfg = ControllerConfig { backlog_unit: 4, ..Default::default() };
        let c = Controller::new(cfg, 0);
        assert_eq!(c.pressure(0, false), 0);
        assert_eq!(c.pressure(3, false), 0);
        assert_eq!(c.pressure(8, false), 2);
        assert_eq!(c.pressure(8, true), 3);
        assert_eq!(c.pressure(0, true), 1, "a maintenance storm alone ramps elision");
    }

    #[test]
    fn miss_budget_tolerates_the_slo() {
        let cfg = ControllerConfig { miss_budget: 2, ..Default::default() };
        let mut c = Controller::new(cfg, 0);
        c.observe(true);
        c.observe(true);
        assert_eq!(c.pressure(0, false), 0, "two misses are inside the budget");
        c.observe(true);
        assert_eq!(c.pressure(0, false), 1);
    }

    #[test]
    fn decide_is_monotone_in_current_state_and_pressure() {
        // exhaustive: for every (h_e, target) pair in the band, a higher
        // current state or a higher target never yields a lower decision
        let cfg = ControllerConfig { h_e_max: 4, backlog_unit: 1, ..Default::default() };
        let decide = |h_e: usize, backlog: usize| {
            let mut c = Controller::new(cfg, h_e);
            c.decide(backlog, false)
        };
        for h_e in 0..=4usize {
            for p in 0..=6usize {
                if h_e < 4 {
                    assert!(decide(h_e + 1, p) >= decide(h_e, p));
                }
                assert!(decide(h_e, p + 1) >= decide(h_e, p));
            }
        }
    }

    #[test]
    fn h_e_in_effect_is_strictly_causal() {
        let traj = [(0u64, 1usize), (100, 2), (250, 3)];
        assert_eq!(h_e_in_effect(&traj, 0), None, "nothing dispatched before cycle 0");
        assert_eq!(h_e_in_effect(&traj, 1), Some(1));
        assert_eq!(
            h_e_in_effect(&traj, 100),
            Some(1),
            "a decision at the boundary is not yet in effect"
        );
        assert_eq!(h_e_in_effect(&traj, 101), Some(2));
        assert_eq!(h_e_in_effect(&traj, 10_000), Some(3));
        assert_eq!(h_e_in_effect(&[], 10_000), None);
    }
}
