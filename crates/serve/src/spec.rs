//! Declarative serve specifications: a grid over service-level knobs
//! (tenant count, fleet size, elision depth) around one shared map
//! workload and one tenant workload base.
//!
//! Like the explorer's `SweepSpec`, expansion order is fixed and
//! documented so a report row index identifies the same service
//! configuration forever — the property the checked-in
//! `bench/serve-baseline.json` relies on.

use serde::{Deserialize, Serialize};

use crescent::workload::{FrameStreamConfig, StreamScenario};
use crescent_accel::TreeMaintenance;
use crescent_pointcloud::datasets::LidarSceneConfig;

/// A serve grid: every combination of `tenant_counts` × `fleet_sizes` ×
/// `elision_depths` runs the same multi-tenant service scenario (shared
/// map, canonical tenant mix, one scheduler) and produces one report
/// row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeSpec {
    /// Human-readable name (`"quick"`, `"full"`), echoed in the report.
    pub label: String,
    /// The shared world-map stream the service maintains one tree per
    /// tick for. Its `scenario`/`maintenance` are honored (the canonical
    /// specs use a registered map with refit maintenance); its
    /// `queries_per_frame` should be 0 — the map answers queries, it
    /// does not ask them.
    pub map: FrameStreamConfig,
    /// Base workload for the tenant mix
    /// ([`crescent::tenant::mixed_tenants`] overrides `scenario` and
    /// `scene.seed` per tenant and the context forces `num_frames` to
    /// the map's tick count). `radius` / `max_neighbors` of the service
    /// search come from here.
    pub tenant_base: FrameStreamConfig,
    /// Modeled cycles between service ticks (frame arrivals repeat every
    /// period, map trees advance every period).
    pub frame_period: u64,
    /// Base per-frame latency budget; tenants get tier multiples of it
    /// (see [`crescent::tenant::mixed_tenants`]).
    pub base_deadline: u64,
    /// Admission bound: a frame arriving while this many admitted frames
    /// are still queued (not yet dispatched) is rejected.
    pub max_backlog: usize,
    /// Top-tree height `h_t` granted to every wavefront (clamped
    /// per-tree like the stream driver).
    pub top_height: usize,
    /// Tenant-count axis (outermost).
    pub tenant_counts: Vec<usize>,
    /// Fleet-size axis.
    pub fleet_sizes: Vec<usize>,
    /// Streaming elision-depth axis `h_e` (innermost); `0` rows are the
    /// exact reference the approximate rows are judged against.
    pub elision_depths: Vec<usize>,
}

/// One expanded grid point, in expansion order.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServePoint {
    /// Position in the expanded grid (== report row index).
    pub index: usize,
    /// Number of admitted tenants (a prefix of the canonical mix).
    pub tenants: usize,
    /// Accelerator instances in the fleet.
    pub fleet: usize,
    /// Streaming elision depth `h_e`.
    pub elision_depth: usize,
}

impl ServeSpec {
    /// The CI-scale spec behind `bench/serve-baseline.json`: a 6-tick
    /// registered map under refit maintenance, tenant mixes of 2 / 4 / 8
    /// (the 8-tenant mix covers 8 distinct canonical scenarios), fleets
    /// of 1 and 2, and `h_e ∈ {0, 4}` — 12 points, seconds to run.
    pub fn quick() -> Self {
        let defaults = FrameStreamConfig::default();
        let map = FrameStreamConfig {
            scene: LidarSceneConfig { total_points: 6_000, seed: 0x5EED_5E4E, ..defaults.scene },
            num_frames: 6,
            queries_per_frame: 0,
            scenario: StreamScenario::Registered,
            maintenance: TreeMaintenance::refit(),
            ..defaults
        };
        let tenant_base = FrameStreamConfig {
            scene: LidarSceneConfig { total_points: 2_000, seed: 0x5EED_7E4A, ..defaults.scene },
            num_frames: 6,
            queries_per_frame: 48,
            ..defaults
        };
        ServeSpec {
            label: "quick".to_string(),
            map,
            tenant_base,
            frame_period: 6_000,
            base_deadline: 9_000,
            max_backlog: 10,
            top_height: 4,
            tenant_counts: vec![2, 4, 8],
            fleet_sizes: vec![1, 2],
            elision_depths: vec![0, 4],
        }
    }

    /// The offline spec the weekly timings job runs: a denser map,
    /// longer stream, tenant mixes up to 16 (wrapping the canonical
    /// scenario matrix), fleets up to 4, three elision depths — 45
    /// points.
    pub fn full() -> Self {
        let mut spec = ServeSpec::quick();
        spec.label = "full".to_string();
        spec.map.scene.total_points = 12_000;
        spec.map.num_frames = 8;
        spec.tenant_base.scene.total_points = 3_000;
        spec.tenant_base.num_frames = 8;
        spec.tenant_base.queries_per_frame = 64;
        spec.frame_period = 8_000;
        spec.base_deadline = 20_000;
        spec.max_backlog = 24;
        spec.tenant_counts = vec![2, 4, 8, 12, 16];
        spec.fleet_sizes = vec![1, 2, 4];
        spec.elision_depths = vec![0, 2, 4];
        spec
    }

    /// Number of grid points.
    pub fn num_points(&self) -> usize {
        self.tenant_counts.len() * self.fleet_sizes.len() * self.elision_depths.len()
    }

    /// The largest tenant count on the axis (the canonical mix is built
    /// once at this size; smaller points use a prefix).
    pub fn max_tenants(&self) -> usize {
        self.tenant_counts.iter().copied().max().unwrap_or(0)
    }

    /// Expands the grid in fixed order: tenants (outermost) → fleet →
    /// elision depth (innermost).
    pub fn expand(&self) -> Vec<ServePoint> {
        let mut points = Vec::with_capacity(self.num_points());
        for &tenants in &self.tenant_counts {
            for &fleet in &self.fleet_sizes {
                for &elision_depth in &self.elision_depths {
                    points.push(ServePoint { index: points.len(), tenants, fleet, elision_depth });
                }
            }
        }
        points
    }

    /// Validates the spec before an expensive run.
    pub fn validate(&self) -> Result<(), String> {
        if self.label.is_empty() {
            return Err("spec label must not be empty".into());
        }
        if self.map.num_frames == 0 {
            return Err("map must have at least one tick".into());
        }
        if self.frame_period == 0 {
            return Err("frame period must be >= 1 cycle".into());
        }
        if self.max_backlog == 0 {
            return Err("max backlog must admit at least one frame".into());
        }
        if self.tenant_base.queries_per_frame == 0 {
            return Err("tenants must issue at least one query per frame".into());
        }
        for (name, empty) in [
            ("tenant_counts", self.tenant_counts.is_empty()),
            ("fleet_sizes", self.fleet_sizes.is_empty()),
            ("elision_depths", self.elision_depths.is_empty()),
        ] {
            if empty {
                return Err(format!("{name} axis must not be empty"));
            }
        }
        if self.tenant_counts.contains(&0) {
            return Err("tenant counts must be >= 1".into());
        }
        if self.fleet_sizes.contains(&0) {
            return Err("fleet sizes must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_specs_validate_and_expand_in_fixed_order() {
        for spec in [ServeSpec::quick(), ServeSpec::full()] {
            spec.validate().expect("canonical specs are valid");
            let points = spec.expand();
            assert_eq!(points.len(), spec.num_points());
            for (i, p) in points.iter().enumerate() {
                assert_eq!(p.index, i);
            }
        }
        let quick = ServeSpec::quick().expand();
        assert_eq!(quick.len(), 12);
        // innermost axis is h_e
        assert_eq!((quick[0].tenants, quick[0].fleet, quick[0].elision_depth), (2, 1, 0));
        assert_eq!((quick[1].tenants, quick[1].fleet, quick[1].elision_depth), (2, 1, 4));
        assert_eq!((quick[2].tenants, quick[2].fleet, quick[2].elision_depth), (2, 2, 0));
        assert_eq!(quick[11].tenants, 8, "last point is the 8-tenant mix");
        assert_eq!(ServeSpec::quick().max_tenants(), 8);
        assert_eq!(ServeSpec::full().max_tenants(), 16);
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut s = ServeSpec::quick();
        s.tenant_counts.clear();
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.fleet_sizes = vec![0];
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.frame_period = 0;
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.max_backlog = 0;
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.tenant_base.queries_per_frame = 0;
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.label.clear();
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.map.num_frames = 0;
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.tenant_counts = vec![0];
        assert!(s.validate().is_err());
    }
}
