//! Declarative serve specifications: a grid over service-level knobs
//! (tenant count, fleet size, elision depth) around one shared map
//! workload and one tenant workload base.
//!
//! Like the explorer's `SweepSpec`, expansion order is fixed and
//! documented so a report row index identifies the same service
//! configuration forever — the property the checked-in
//! `bench/serve-baseline.json` relies on.

use serde::{Deserialize, Serialize};

use crescent::workload::{FrameStreamConfig, StreamScenario};
use crescent_accel::TreeMaintenance;
use crescent_pointcloud::datasets::LidarSceneConfig;

use crate::controller::{ControlMode, ControllerConfig};

/// A serve grid: every combination of `tenant_counts` × `fleet_sizes` ×
/// `elision_depths` × `controller_modes` runs the same multi-tenant
/// service scenario (shared map, canonical tenant mix, one scheduler)
/// and produces one report row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeSpec {
    /// Human-readable name (`"quick"`, `"full"`), echoed in the report.
    pub label: String,
    /// The shared world-map stream the service maintains one tree per
    /// tick for. Its `scenario`/`maintenance` are honored (the canonical
    /// specs use a registered map with refit maintenance); its
    /// `queries_per_frame` should be 0 — the map answers queries, it
    /// does not ask them.
    pub map: FrameStreamConfig,
    /// Base workload for the tenant mix
    /// ([`crescent::tenant::mixed_tenants`] overrides `scenario` and
    /// `scene.seed` per tenant and the context forces `num_frames` to
    /// the map's tick count). `radius` / `max_neighbors` of the service
    /// search come from here.
    pub tenant_base: FrameStreamConfig,
    /// Modeled cycles between service ticks (frame arrivals repeat every
    /// period, map trees advance every period).
    pub frame_period: u64,
    /// Base per-frame latency budget; tenants get tier multiples of it
    /// (see [`crescent::tenant::mixed_tenants`]).
    pub base_deadline: u64,
    /// Admission bound: a frame arriving while this many admitted frames
    /// are still queued (not yet dispatched) is rejected.
    pub max_backlog: usize,
    /// Top-tree height `h_t` granted to every wavefront (clamped
    /// per-tree like the stream driver).
    pub top_height: usize,
    /// Tenant-count axis (outermost).
    pub tenant_counts: Vec<usize>,
    /// Fleet-size axis.
    pub fleet_sizes: Vec<usize>,
    /// Streaming elision-depth axis `h_e`; `0` rows are the exact
    /// reference the approximate rows are judged against. Under
    /// [`ControlMode::Slo`] this is the controller's *initial* `h_e`.
    pub elision_depths: Vec<usize>,
    /// Knob-policy axis (innermost): [`ControlMode::Static`] pins `h_e`,
    /// [`ControlMode::Slo`] lets the feedback controller step it per
    /// wavefront. Adjacent rows of the expansion therefore differ only
    /// in the controller — the comparison the closed-loop story is
    /// graded on.
    pub controller_modes: Vec<ControlMode>,
    /// Tuning of the SLO controller (shared by every
    /// [`ControlMode::Slo`] point; ignored by static points but still
    /// fingerprinted, so retuning is visible as a spec change).
    pub controller: ControllerConfig,
}

/// One expanded grid point, in expansion order.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServePoint {
    /// Position in the expanded grid (== report row index).
    pub index: usize,
    /// Number of admitted tenants (a prefix of the canonical mix).
    pub tenants: usize,
    /// Accelerator instances in the fleet.
    pub fleet: usize,
    /// Streaming elision depth `h_e` (the controller's starting point
    /// under [`ControlMode::Slo`]).
    pub elision_depth: usize,
    /// Knob policy of this point.
    pub controller: ControlMode,
}

impl ServeSpec {
    /// The CI-scale spec behind `bench/serve-baseline.json`: a 6-tick
    /// registered map under refit maintenance, tenant mixes of 2 / 4 / 8
    /// (the 8-tenant mix covers 8 distinct canonical scenarios), fleets
    /// of 1 and 2, `h_e ∈ {0, 4}`, and both knob policies (static and
    /// SLO-controlled) — 24 points, seconds to run.
    pub fn quick() -> Self {
        let defaults = FrameStreamConfig::default();
        let map = FrameStreamConfig {
            scene: LidarSceneConfig { total_points: 6_000, seed: 0x5EED_5E4E, ..defaults.scene },
            num_frames: 6,
            queries_per_frame: 0,
            scenario: StreamScenario::Registered,
            maintenance: TreeMaintenance::refit(),
            ..defaults
        };
        let tenant_base = FrameStreamConfig {
            scene: LidarSceneConfig { total_points: 2_000, seed: 0x5EED_7E4A, ..defaults.scene },
            num_frames: 6,
            queries_per_frame: 48,
            ..defaults
        };
        ServeSpec {
            label: "quick".to_string(),
            map,
            tenant_base,
            frame_period: 3000,
            base_deadline: 4500,
            max_backlog: 10,
            top_height: 4,
            tenant_counts: vec![2, 4, 8],
            fleet_sizes: vec![1, 2],
            elision_depths: vec![0, 4],
            controller_modes: vec![ControlMode::Static, ControlMode::Slo],
            controller: ControllerConfig::default(),
        }
    }

    /// The offline spec the weekly timings job runs: a denser map,
    /// longer stream, tenant mixes up to 16 (wrapping the canonical
    /// scenario matrix), fleets up to 4, three elision depths, both
    /// knob policies — 90 points.
    pub fn full() -> Self {
        let mut spec = ServeSpec::quick();
        spec.label = "full".to_string();
        spec.map.scene.total_points = 12_000;
        spec.map.num_frames = 8;
        spec.tenant_base.scene.total_points = 3_000;
        spec.tenant_base.num_frames = 8;
        spec.tenant_base.queries_per_frame = 64;
        spec.frame_period = 2_000;
        spec.base_deadline = 5_000;
        spec.max_backlog = 24;
        spec.tenant_counts = vec![2, 4, 8, 12, 16];
        spec.fleet_sizes = vec![1, 2, 4];
        spec.elision_depths = vec![0, 2, 4];
        spec
    }

    /// Number of grid points.
    pub fn num_points(&self) -> usize {
        self.tenant_counts.len()
            * self.fleet_sizes.len()
            * self.elision_depths.len()
            * self.controller_modes.len()
    }

    /// The largest tenant count on the axis (the canonical mix is built
    /// once at this size; smaller points use a prefix).
    pub fn max_tenants(&self) -> usize {
        self.tenant_counts.iter().copied().max().unwrap_or(0)
    }

    /// Expands the grid in fixed order: tenants (outermost) → fleet →
    /// elision depth → controller mode (innermost, so a static row and
    /// its controller-on twin are adjacent).
    pub fn expand(&self) -> Vec<ServePoint> {
        let mut points = Vec::with_capacity(self.num_points());
        for &tenants in &self.tenant_counts {
            for &fleet in &self.fleet_sizes {
                for &elision_depth in &self.elision_depths {
                    for &controller in &self.controller_modes {
                        points.push(ServePoint {
                            index: points.len(),
                            tenants,
                            fleet,
                            elision_depth,
                            controller,
                        });
                    }
                }
            }
        }
        points
    }

    /// Validates the spec before an expensive run.
    pub fn validate(&self) -> Result<(), String> {
        if self.label.is_empty() {
            return Err("spec label must not be empty".into());
        }
        if self.map.num_frames == 0 {
            return Err("map must have at least one tick".into());
        }
        if self.frame_period == 0 {
            return Err("frame period must be >= 1 cycle".into());
        }
        if self.max_backlog == 0 {
            return Err("max backlog must admit at least one frame".into());
        }
        if self.tenant_base.queries_per_frame == 0 {
            return Err("tenants must issue at least one query per frame".into());
        }
        self.controller.validate()?;
        for (name, empty) in [
            ("tenant_counts", self.tenant_counts.is_empty()),
            ("fleet_sizes", self.fleet_sizes.is_empty()),
            ("elision_depths", self.elision_depths.is_empty()),
            ("controller_modes", self.controller_modes.is_empty()),
        ] {
            if empty {
                return Err(format!("{name} axis must not be empty"));
            }
        }
        if self.tenant_counts.contains(&0) {
            return Err("tenant counts must be >= 1".into());
        }
        if self.fleet_sizes.contains(&0) {
            return Err("fleet sizes must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_specs_validate_and_expand_in_fixed_order() {
        for spec in [ServeSpec::quick(), ServeSpec::full()] {
            spec.validate().expect("canonical specs are valid");
            let points = spec.expand();
            assert_eq!(points.len(), spec.num_points());
            for (i, p) in points.iter().enumerate() {
                assert_eq!(p.index, i);
            }
        }
        let quick = ServeSpec::quick().expand();
        assert_eq!(quick.len(), 24);
        // innermost axis is the controller mode: static/slo twins are adjacent
        let key = |p: &ServePoint| (p.tenants, p.fleet, p.elision_depth, p.controller);
        assert_eq!(key(&quick[0]), (2, 1, 0, ControlMode::Static));
        assert_eq!(key(&quick[1]), (2, 1, 0, ControlMode::Slo));
        assert_eq!(key(&quick[2]), (2, 1, 4, ControlMode::Static));
        assert_eq!(key(&quick[4]), (2, 2, 0, ControlMode::Static));
        assert_eq!(key(&quick[16]), (8, 1, 0, ControlMode::Static), "the overload corner");
        assert_eq!(key(&quick[17]), (8, 1, 0, ControlMode::Slo), "its controller-on twin");
        assert_eq!(quick[23].tenants, 8, "last point is the 8-tenant mix");
        assert_eq!(ServeSpec::quick().max_tenants(), 8);
        assert_eq!(ServeSpec::full().max_tenants(), 16);
        assert_eq!(ServeSpec::full().num_points(), 90);
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut s = ServeSpec::quick();
        s.tenant_counts.clear();
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.fleet_sizes = vec![0];
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.frame_period = 0;
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.max_backlog = 0;
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.tenant_base.queries_per_frame = 0;
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.label.clear();
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.map.num_frames = 0;
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.tenant_counts = vec![0];
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.controller_modes.clear();
        assert!(s.validate().is_err());
        let mut s = ServeSpec::quick();
        s.controller.window = 0;
        assert!(s.validate().is_err(), "controller tuning is validated with the spec");
    }
}
