//! Machine-readable serve reports: schema-versioned JSON emission in
//! the explorer's exact-diff house style — pretty top-level header, one
//! compact row object per line — so [`crescent_explorer::diff_reports`]
//! points the CI serve gate straight at drifted service configurations.

use serde::{Deserialize, Serialize};

use crescent_explorer::Json;
use crescent_memsim::EnergyLedger;

use crate::ledger::ServiceLedger;
use crate::spec::{ServePoint, ServeSpec};

/// Schema identifier embedded in every serve report. Bump the version
/// suffix on any change to the layout, key set, or metric semantics —
/// the serve gate's comparator is exact, so an unversioned layout
/// change would read as inexplicable metric drift instead of an obvious
/// schema break. Field-by-field documentation lives in
/// [`docs/SERVE_SCHEMA.md`](../../../docs/SERVE_SCHEMA.md).
///
/// `v2` added the SLO controller: a `controller` grid axis + config
/// echo, per-row knob-trajectory columns (`controller`, `h_e_final`,
/// `h_e_cycles`), recall-proxy columns (`elided`, `nodes_skipped`,
/// `reuses`), the maintenance bill (`map_cycles`, `maint_alt_ticks`),
/// and per-tenant `h_e_max`.
pub const SCHEMA: &str = "crescent-serve/v2";

/// One tenant's summary inside a serve row. A compressed view of its
/// [`TenantLedger`](crate::ledger::TenantLedger): counts, tail
/// percentiles, and attributed energy — per-frame outcomes stay in the
/// in-memory ledger, the report keeps rows line-diffable.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantRow {
    /// Tenant name (`t03-jitter` style: mix position + scenario).
    pub name: String,
    /// Arrival phase within the service period.
    pub phase: u64,
    /// The tenant's per-frame latency budget.
    pub deadline: u64,
    /// Admitted frame count.
    pub admitted: usize,
    /// Rejected frame count.
    pub rejected: usize,
    /// Deadline misses among admitted frames.
    pub misses: usize,
    /// Median admitted-frame latency (modeled cycles, nearest-rank).
    pub p50: u64,
    /// 95th-percentile latency.
    pub p95: u64,
    /// 99th-percentile latency.
    pub p99: u64,
    /// Queries answered.
    pub queries: usize,
    /// Neighbors returned.
    pub neighbors: usize,
    /// The deepest `h_e` any of the tenant's admitted frames was served
    /// at (0 = every answer exact) — the tenant-level recall exposure.
    pub h_e_max: usize,
    /// Total energy attributed to the tenant (query-share slice of its
    /// wavefronts).
    pub energy: f64,
}

impl TenantRow {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name", Json::Str(self.name.clone())),
            ("phase", Json::U64(self.phase)),
            ("deadline", Json::U64(self.deadline)),
            ("admitted", Json::U64(self.admitted as u64)),
            ("rejected", Json::U64(self.rejected as u64)),
            ("misses", Json::U64(self.misses as u64)),
            ("p50", Json::U64(self.p50)),
            ("p95", Json::U64(self.p95)),
            ("p99", Json::U64(self.p99)),
            ("queries", Json::U64(self.queries as u64)),
            ("neighbors", Json::U64(self.neighbors as u64)),
            ("h_e_max", Json::U64(self.h_e_max as u64)),
            ("energy", Json::F64(self.energy)),
        ])
    }
}

/// One grid point's configuration echo plus its graded service ledger.
/// All metrics are *modeled* (cycles, energy units, counts) — no
/// wall-clock anywhere — so every field is bit-reproducible across
/// runs, worker counts, and machines.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeRow {
    /// Row index == grid expansion index.
    pub index: usize,
    /// Tenants admitted to the service (prefix of the canonical mix).
    pub tenants: usize,
    /// Accelerator instances in the fleet.
    pub fleet: usize,
    /// Streaming elision depth `h_e` (0 = exact, the bit-identity
    /// reference; the controller's starting point on SLO rows).
    pub elision_depth: usize,
    /// Knob policy of the row (`"static"` / `"slo"`).
    pub controller: String,
    /// The `h_e` in force at the end of the run (== `elision_depth` on
    /// static rows).
    pub h_e_final: usize,
    /// Fleet cycles spent at each `h_e`, ascending `(h_e, cycles)`
    /// pairs — the time-at-each-`h_e` histogram of the knob trajectory.
    pub h_e_cycles: Vec<(usize, u64)>,
    /// Conflicted banked-SRAM fetches elided fleet-wide — with
    /// `nodes_skipped`, the recall proxy pricing the latency savings.
    pub conflicts_elided: u64,
    /// Tree nodes made unreachable by those elisions.
    pub nodes_skipped: u64,
    /// Elided fetches salvaged by descendant reuse.
    pub conflict_reuses: u64,
    /// Map-maintenance slot cycles charged after the controller's
    /// per-tick policy choice.
    pub map_build_cycles: u64,
    /// Ticks re-pointed at the alternate maintenance policy.
    pub alt_maintenance_ticks: usize,
    /// Admitted frames across all tenants.
    pub admitted: usize,
    /// Frames rejected by admission control.
    pub rejected: usize,
    /// Deadline misses among admitted frames.
    pub deadline_misses: usize,
    /// Fleet-wide median latency (modeled cycles, nearest-rank).
    pub p50: u64,
    /// Fleet-wide 95th-percentile latency.
    pub p95: u64,
    /// Fleet-wide 99th-percentile latency — the tail the service is
    /// graded on.
    pub p99: u64,
    /// Completion cycle of the last wavefront.
    pub makespan: u64,
    /// Wavefronts dispatched.
    pub wavefronts: usize,
    /// Wavefronts batching more than one tenant.
    pub shared_wavefronts: usize,
    /// Amortized top-tree fetches across all wavefronts.
    pub top_fetches: u64,
    /// What per-query routing would have fetched.
    pub top_fetches_unamortized: u64,
    /// `top_fetches_unamortized / top_fetches` — cross-tenant top-tree
    /// amortization actually achieved.
    pub amortization: f64,
    /// Mean fraction of the makespan the fleet was busy.
    pub utilization: f64,
    /// Queries answered across all tenants.
    pub queries: usize,
    /// Neighbors returned across all tenants.
    pub neighbors: usize,
    /// Total service energy by ledger category (map maintenance +
    /// search).
    pub energy: EnergyLedger,
    /// FNV-1a digest over every tenant's neighbor sets and admission
    /// outcomes — the one-number result identity the baseline locks.
    pub digest: u64,
    /// Per-tenant summaries, in tenant-mix order.
    pub per_tenant: Vec<TenantRow>,
}

impl ServeRow {
    /// Grades a service ledger into its report row.
    pub fn from_ledger(point: ServePoint, ledger: &ServiceLedger) -> ServeRow {
        let per_tenant = ledger
            .tenants
            .iter()
            .map(|t| TenantRow {
                name: t.name.clone(),
                phase: t.arrival_phase,
                deadline: t.deadline_cycles,
                admitted: t.admitted(),
                rejected: t.rejected(),
                misses: t.deadline_misses(),
                p50: t.latency_percentile(50),
                p95: t.latency_percentile(95),
                p99: t.latency_percentile(99),
                queries: t.queries(),
                neighbors: t.neighbors(),
                h_e_max: t.max_h_e(),
                energy: t.energy.total(),
            })
            .collect();
        ServeRow {
            index: point.index,
            tenants: point.tenants,
            fleet: point.fleet,
            elision_depth: point.elision_depth,
            controller: point.controller.label().to_string(),
            h_e_final: ledger.final_h_e(),
            h_e_cycles: ledger.time_at_h_e(),
            conflicts_elided: ledger.conflicts_elided,
            nodes_skipped: ledger.nodes_skipped,
            conflict_reuses: ledger.conflict_reuses,
            map_build_cycles: ledger.map_build_cycles,
            alt_maintenance_ticks: ledger.alt_maintenance_ticks,
            admitted: ledger.admitted(),
            rejected: ledger.rejected(),
            deadline_misses: ledger.deadline_misses(),
            p50: ledger.latency_percentile(50),
            p95: ledger.latency_percentile(95),
            p99: ledger.latency_percentile(99),
            makespan: ledger.makespan,
            wavefronts: ledger.wavefronts,
            shared_wavefronts: ledger.shared_wavefronts,
            top_fetches: ledger.top_fetches,
            top_fetches_unamortized: ledger.top_fetches_unamortized,
            amortization: ledger.amortization_factor(),
            utilization: ledger.utilization(),
            queries: ledger.tenants.iter().map(|t| t.queries()).sum(),
            neighbors: ledger.tenants.iter().map(|t| t.neighbors()).sum(),
            energy: ledger.total_energy(),
            digest: ledger.digest,
            per_tenant,
        }
    }

    /// The row as a compact JSON object (one report line).
    fn to_json(&self) -> Json {
        let mut energy: Vec<(&'static str, Json)> = self
            .energy
            .category_rows()
            .iter()
            .map(|&(name, value)| (name, Json::F64(value)))
            .collect();
        energy.push(("total", Json::F64(self.energy.total())));
        Json::Object(vec![
            ("row", Json::U64(self.index as u64)),
            ("tenants", Json::U64(self.tenants as u64)),
            ("fleet", Json::U64(self.fleet as u64)),
            ("h_e", Json::U64(self.elision_depth as u64)),
            ("controller", Json::Str(self.controller.clone())),
            ("h_e_final", Json::U64(self.h_e_final as u64)),
            (
                "h_e_cycles",
                Json::Array(
                    self.h_e_cycles
                        .iter()
                        .map(|&(h_e, cycles)| {
                            Json::Array(vec![Json::U64(h_e as u64), Json::U64(cycles)])
                        })
                        .collect(),
                ),
            ),
            ("elided", Json::U64(self.conflicts_elided)),
            ("nodes_skipped", Json::U64(self.nodes_skipped)),
            ("reuses", Json::U64(self.conflict_reuses)),
            ("map_cycles", Json::U64(self.map_build_cycles)),
            ("maint_alt_ticks", Json::U64(self.alt_maintenance_ticks as u64)),
            ("admitted", Json::U64(self.admitted as u64)),
            ("rejected", Json::U64(self.rejected as u64)),
            ("deadline_misses", Json::U64(self.deadline_misses as u64)),
            ("p50", Json::U64(self.p50)),
            ("p95", Json::U64(self.p95)),
            ("p99", Json::U64(self.p99)),
            ("makespan", Json::U64(self.makespan)),
            ("wavefronts", Json::U64(self.wavefronts as u64)),
            ("shared_wavefronts", Json::U64(self.shared_wavefronts as u64)),
            ("top_fetches", Json::U64(self.top_fetches)),
            ("top_fetches_unamortized", Json::U64(self.top_fetches_unamortized)),
            ("amortization", Json::F64(self.amortization)),
            ("utilization", Json::F64(self.utilization)),
            ("queries", Json::U64(self.queries as u64)),
            ("neighbors", Json::U64(self.neighbors as u64)),
            ("energy", Json::Object(energy)),
            ("digest", Json::Str(format!("{:016x}", self.digest))),
            ("per_tenant", Json::Array(self.per_tenant.iter().map(TenantRow::to_json).collect())),
        ])
    }
}

/// A completed serve run: the spec that produced it plus one row per
/// grid point, in expansion order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeReport {
    /// The spec the service ran.
    pub spec: ServeSpec,
    /// One row per grid point, ordered by [`ServeRow::index`].
    pub rows: Vec<ServeRow>,
}

/// FNV-1a fingerprint of a serve spec's canonical report echo (schema,
/// label, workload, grid). Two reports carry the same fingerprint iff
/// they were produced by byte-identical spec echoes — how the gate's
/// comparator distinguishes "different spec" from metric drift.
pub fn serve_fingerprint(spec: &ServeSpec) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for part in [
        SCHEMA,
        spec.label.as_str(),
        &workload_json(spec).to_compact(),
        &grid_json(spec).to_compact(),
    ] {
        for byte in part.bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The workload echo of the report header: the shared map, the tenant
/// workload base, and the service-level knobs — everything about the
/// scenario that is not a grid axis. Part of the fingerprint.
fn workload_json(spec: &ServeSpec) -> Json {
    let stream = |w: &crescent::workload::FrameStreamConfig| {
        Json::Object(vec![
            ("scenario", Json::from(w.scenario.label())),
            ("total_points", Json::U64(w.scene.total_points as u64)),
            ("seed", Json::U64(w.scene.seed)),
            ("num_frames", Json::U64(w.num_frames as u64)),
            ("queries_per_frame", Json::U64(w.queries_per_frame as u64)),
            ("radius", Json::F64(w.radius as f64)),
            ("max_neighbors", w.max_neighbors.map(|k| Json::U64(k as u64)).unwrap_or(Json::Null)),
        ])
    };
    Json::Object(vec![
        ("map", stream(&spec.map)),
        ("tenant_base", stream(&spec.tenant_base)),
        ("frame_period", Json::U64(spec.frame_period)),
        ("base_deadline", Json::U64(spec.base_deadline)),
        ("max_backlog", Json::U64(spec.max_backlog as u64)),
        ("h_t", Json::U64(spec.top_height as u64)),
        (
            "controller",
            Json::Object(vec![
                ("h_e_max", Json::U64(spec.controller.h_e_max as u64)),
                ("window", Json::U64(spec.controller.window as u64)),
                ("miss_budget", Json::U64(spec.controller.miss_budget as u64)),
                ("backlog_unit", Json::U64(spec.controller.backlog_unit as u64)),
            ]),
        ),
    ])
}

/// The grid (axis) echo of the report header — part of the fingerprint.
fn grid_json(spec: &ServeSpec) -> Json {
    Json::Object(vec![
        ("tenants", Json::Array(spec.tenant_counts.iter().map(|&v| Json::U64(v as u64)).collect())),
        ("fleet", Json::Array(spec.fleet_sizes.iter().map(|&v| Json::U64(v as u64)).collect())),
        ("h_e", Json::Array(spec.elision_depths.iter().map(|&v| Json::U64(v as u64)).collect())),
        (
            "controller",
            Json::Array(spec.controller_modes.iter().map(|m| Json::from(m.label())).collect()),
        ),
    ])
}

impl ServeReport {
    /// Serializes the report: pretty top-level structure with each row
    /// on its own line, in the explorer's house style, so
    /// [`crescent_explorer::diff_reports`] can point at individual
    /// service configurations when a metric drifts. A pure function of
    /// the report — byte-identical across runs, worker counts, and
    /// machines.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + 512 * self.rows.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", Json::from(SCHEMA).to_compact()));
        out.push_str(&format!(
            "  \"label\": {},\n",
            Json::from(self.spec.label.as_str()).to_compact()
        ));
        out.push_str(&format!("  \"fingerprint\": \"{:016x}\",\n", serve_fingerprint(&self.spec)));
        out.push_str(&format!("  \"workload\": {},\n", workload_json(&self.spec).to_compact()));
        out.push_str(&format!("  \"grid\": {},\n", grid_json(&self.spec).to_compact()));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&row.to_json().to_compact());
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControlMode;
    use crate::ledger::{FrameOutcome, InstanceReport, KnobPoint, TenantLedger};

    fn ledger() -> ServiceLedger {
        let frame = |admitted: bool, latency: u64, missed: bool| FrameOutcome {
            frame: 0,
            arrival: 0,
            admitted,
            wavefront: admitted.then_some(0),
            instance: admitted.then_some(0),
            start: 0,
            completion: latency,
            latency,
            queries: if admitted { 4 } else { 0 },
            neighbors: if admitted { 9 } else { 0 },
            missed,
            h_e: 0,
        };
        ServiceLedger {
            tenants: vec![
                TenantLedger {
                    name: "t00-sweep".into(),
                    scenario: "sweep".into(),
                    arrival_phase: 0,
                    deadline_cycles: 100,
                    frames: vec![frame(true, 50, false), frame(true, 120, true)],
                    energy: EnergyLedger::new(),
                },
                TenantLedger {
                    name: "t01-registered".into(),
                    scenario: "registered".into(),
                    arrival_phase: 3_000,
                    deadline_cycles: 200,
                    frames: vec![frame(true, 80, false), frame(false, 0, false)],
                    energy: EnergyLedger::new(),
                },
            ],
            instances: vec![InstanceReport { wavefronts: 3, busy_cycles: 90, free_at: 120 }],
            wavefronts: 3,
            shared_wavefronts: 1,
            top_fetches: 30,
            top_fetches_unamortized: 60,
            makespan: 120,
            map_energy: EnergyLedger::new(),
            search_energy: EnergyLedger::new(),
            knob_trajectory: vec![
                KnobPoint { wavefront: 0, start: 0, h_e: 0, latency: 50 },
                KnobPoint { wavefront: 1, start: 50, h_e: 1, latency: 40 },
                KnobPoint { wavefront: 2, start: 90, h_e: 1, latency: 30 },
            ],
            conflicts_elided: 6,
            nodes_skipped: 18,
            conflict_reuses: 2,
            map_build_cycles: 700,
            alt_maintenance_ticks: 1,
            digest: 0xfeed_f00d,
        }
    }

    fn point(index: usize) -> ServePoint {
        ServePoint { index, tenants: 2, fleet: 1, elision_depth: 0, controller: ControlMode::Slo }
    }

    #[test]
    fn row_grades_the_ledger() {
        let row = ServeRow::from_ledger(point(5), &ledger());
        assert_eq!(row.index, 5);
        assert_eq!((row.admitted, row.rejected, row.deadline_misses), (3, 1, 1));
        assert_eq!((row.p50, row.p95, row.p99), (80, 120, 120));
        assert_eq!(row.queries, 12);
        assert_eq!(row.per_tenant.len(), 2);
        assert_eq!(row.per_tenant[0].name, "t00-sweep");
        assert_eq!(row.per_tenant[0].p99, 120);
        assert_eq!(row.per_tenant[1].rejected, 1);
        assert!((row.amortization - 2.0).abs() < 1e-12);
        // v2: knob-trajectory + recall-proxy columns come from the ledger
        assert_eq!(row.controller, "slo");
        assert_eq!(row.h_e_final, 1);
        assert_eq!(row.h_e_cycles, vec![(0, 50), (1, 70)]);
        assert_eq!((row.conflicts_elided, row.nodes_skipped, row.conflict_reuses), (6, 18, 2));
        assert_eq!((row.map_build_cycles, row.alt_maintenance_ticks), (700, 1));
    }

    #[test]
    fn json_has_schema_one_row_per_line_and_is_reproducible() {
        let report = ServeReport {
            spec: ServeSpec::quick(),
            rows: vec![ServeRow::from_ledger(point(0), &ledger())],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"crescent-serve/v2\",\n"));
        assert!(json.contains("\n  \"fingerprint\": \""));
        assert!(json.contains("\n  \"workload\": {\"map\":"));
        assert!(json.contains(
            "\"controller\":{\"h_e_max\":4,\"window\":8,\"miss_budget\":0,\"backlog_unit\":4}"
        ));
        assert!(json.contains("\n  \"grid\": {\"tenants\":[2,4,8]"));
        assert!(json.contains("\"controller\":[\"static\",\"slo\"]"));
        assert!(json.contains("\"controller\":\"slo\""));
        assert!(json.contains("\"h_e_cycles\":[[0,50],[1,70]]"));
        assert!(json.contains("\"elided\":6"));
        assert!(json.contains("\"reuses\":2"));
        assert!(json.contains("\"h_e_max\":0,\"energy\":"), "per-tenant h_e exposure");
        let row_lines: Vec<&str> =
            json.lines().filter(|l| l.trim_start().starts_with("{\"row\":")).collect();
        assert_eq!(row_lines.len(), 1, "one row per line for line-level diffs");
        assert!(json.contains("\"digest\":\"00000000feedf00d\""));
        assert!(json.contains("\"p99\":120"));
        assert!(json.contains("\"per_tenant\":[{\"name\":\"t00-sweep\""));
        assert!(json.ends_with("}\n"));
        assert_eq!(json, report.to_json(), "serialization is a pure function");
    }

    #[test]
    fn fingerprint_identifies_the_spec_not_the_run() {
        assert_eq!(serve_fingerprint(&ServeSpec::quick()), serve_fingerprint(&ServeSpec::quick()));
        assert_ne!(serve_fingerprint(&ServeSpec::quick()), serve_fingerprint(&ServeSpec::full()));
        let mut relabeled = ServeSpec::quick();
        relabeled.label = "quick2".into();
        assert_ne!(serve_fingerprint(&ServeSpec::quick()), serve_fingerprint(&relabeled));
        let mut reaxed = ServeSpec::quick();
        reaxed.fleet_sizes.push(3);
        assert_ne!(serve_fingerprint(&ServeSpec::quick()), serve_fingerprint(&reaxed));
        let mut retuned = ServeSpec::quick();
        retuned.base_deadline += 1;
        assert_ne!(serve_fingerprint(&ServeSpec::quick()), serve_fingerprint(&retuned));
        let mut recontrolled = ServeSpec::quick();
        recontrolled.controller.window += 1;
        assert_ne!(
            serve_fingerprint(&ServeSpec::quick()),
            serve_fingerprint(&recontrolled),
            "retuning the controller is a spec change, not metric drift"
        );
        let mut remoded = ServeSpec::quick();
        remoded.controller_modes = vec![ControlMode::Static];
        assert_ne!(serve_fingerprint(&ServeSpec::quick()), serve_fingerprint(&remoded));
    }

    #[test]
    fn serve_reports_work_with_the_explorer_comparator() {
        let report = ServeReport {
            spec: ServeSpec::quick(),
            rows: vec![ServeRow::from_ledger(point(0), &ledger())],
        };
        let base = report.to_json();
        assert!(crescent_explorer::diff_reports(&base, &base).is_none());
        let mut drifted = report.clone();
        drifted.rows[0].p99 = 121;
        let msg = crescent_explorer::diff_reports(&base, &drifted.to_json()).expect("drift");
        assert!(msg.contains("p99: 120 -> 121"), "{msg}");
        let mut respecced = report.clone();
        respecced.spec.base_deadline += 1;
        let msg =
            crescent_explorer::diff_reports(&base, &respecced.to_json()).expect("spec mismatch");
        assert!(msg.contains("different spec"), "{msg}");
    }
}
