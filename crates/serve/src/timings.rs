//! The serve wall-clock sidecar: where measured time lives so it can
//! never touch the gated report bytes.
//!
//! Same fence as the explorer's sweep sidecar: every metric in a
//! [`ServeReport`](crate::ServeReport) is *modeled* and the serve gate
//! compares report bytes exactly, so wall-clock measurements serialize
//! into their own sidecar JSON written to a *different file* (`repro
//! serve --timings <path>`), under their own schema, and are never an
//! input to `--check`.

use std::fmt::Write as _;

use crescent_explorer::Json;

use crate::report::serve_fingerprint;
use crate::spec::ServeSpec;

/// Schema identifier embedded in every serve timings sidecar.
/// Versioned separately from the report schema: sidecar layout changes
/// never imply report drift, and vice versa.
pub const TIMINGS_SCHEMA: &str = "crescent-serve-timings/v1";

/// Wall-clock measurements of one serve run, captured with
/// [`std::time::Instant`] around the phases of
/// [`run_serve_timed`](crate::run_serve_timed).
///
/// Inherently **not** reproducible — two runs of the same spec produce
/// different numbers — which is exactly why this struct is returned
/// beside the report instead of inside it.
#[derive(Clone, Debug, Default)]
pub struct ServeTimings {
    /// Wall time of the whole run (context build + the worker-pool
    /// phase), in nanoseconds.
    pub total_nanos: u64,
    /// Cost of building the shared service context: map stream
    /// rendering, tree maintenance, and tenant query generation.
    pub context_nanos: u64,
    /// Per-grid-point simulation cost as `(row index, nanos)`, in row
    /// order of the produced report.
    pub points: Vec<(usize, u64)>,
}

impl ServeTimings {
    /// Total per-point simulation wall time, summed across workers —
    /// with an N-worker pool this exceeds the elapsed wall time of the
    /// pool phase by up to a factor of N.
    pub fn point_nanos(&self) -> u64 {
        self.points.iter().map(|&(_, n)| n).sum()
    }

    /// Renders the sidecar JSON: run identification (schema, spec
    /// label, fingerprint) followed by the measurements. For humans and
    /// dashboards, never for the exact comparator.
    pub fn to_json(&self, spec: &ServeSpec) -> String {
        let mut out = String::with_capacity(64 * (self.points.len() + 8));
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", Json::from(TIMINGS_SCHEMA).to_compact());
        let _ = writeln!(out, "  \"label\": {},", Json::from(spec.label.as_str()).to_compact());
        let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", serve_fingerprint(spec));
        let _ = writeln!(out, "  \"total_nanos\": {},", self.total_nanos);
        let _ = writeln!(out, "  \"context_nanos\": {},", self.context_nanos);
        let _ = writeln!(out, "  \"point_nanos\": {},", self.point_nanos());
        out.push_str("  \"points\": [\n");
        for (i, &(row, nanos)) in self.points.iter().enumerate() {
            let entry =
                Json::Object(vec![("row", Json::U64(row as u64)), ("nanos", Json::U64(nanos))]);
            let _ = writeln!(
                out,
                "    {}{}",
                entry.to_compact(),
                if i + 1 < self.points.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeTimings {
        ServeTimings {
            total_nanos: 5_000,
            context_nanos: 1_500,
            points: vec![(0, 700), (2, 900), (4, 1_100)],
        }
    }

    #[test]
    fn totals_sum_their_sections() {
        assert_eq!(sample().point_nanos(), 2_700);
        assert_eq!(ServeTimings::default().point_nanos(), 0);
    }

    #[test]
    fn sidecar_identifies_its_run_and_carries_every_measurement() {
        let spec = ServeSpec::quick();
        let json = sample().to_json(&spec);
        assert!(json.starts_with("{\n"), "{json}");
        assert!(json.contains(&format!("\"schema\": \"{TIMINGS_SCHEMA}\"")), "{json}");
        assert!(json.contains("\"label\": \"quick\""), "{json}");
        assert!(
            json.contains(&format!("\"fingerprint\": \"{:016x}\"", serve_fingerprint(&spec))),
            "{json}"
        );
        assert!(json.contains("\"total_nanos\": 5000"), "{json}");
        assert!(json.contains("\"context_nanos\": 1500"), "{json}");
        assert!(json.contains("\"point_nanos\": 2700"), "{json}");
        assert!(json.contains(r#"{"row":4,"nanos":1100}"#), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn sidecar_schema_is_not_the_report_schema() {
        assert_ne!(TIMINGS_SCHEMA, crate::report::SCHEMA);
    }
}
