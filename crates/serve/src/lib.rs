//! # crescent-serve — the deterministic multi-tenant streaming service
//!
//! Models Crescent accelerators as a *service*: N concurrent tenants —
//! each a seeded [`FrameStream`](crescent::workload::FrameStream) with
//! its own scenario, arrival phase, and per-frame deadline — submit
//! query frames against one shared world map, and a deterministic
//! scheduler batches ready frames across tenants into shared wavefronts
//! on a modeled fleet of accelerator instances.
//!
//! The layer answers the serving-side questions the single-stream
//! explorer cannot: what do the **tail latencies** (p50/p95/p99) look
//! like under multi-tenant load, how many frames **miss deadlines** or
//! are **rejected** by admission control, how much **top-tree traffic**
//! does cross-tenant batching amortize, and how do tenant count, fleet
//! size, and elision depth trade against each other.
//!
//! Crucially, co-scheduling is **result-neutral at `h_e = 0`**: the
//! engine is tag-blind, so a tenant's neighbor sets are bit-identical
//! whether it runs alone or batched with seven co-tenants — the
//! scheduler moves cycles, never answers. That invariant (fuzzed in
//! `tests/serve_matrix.rs`) is what makes the multi-tenant ledger
//! trustworthy as an *accuracy* statement, not just a latency one.
//!
//! Everything is modeled — cycles, energy, counts — so the whole report
//! is a pure function of its spec: byte-identical across runs, worker
//! counts, and machines. CI locks it down against
//! `bench/serve-baseline.json` with an exact comparator (`repro serve
//! --quick --check`); wall-clock lives only in the `--timings` sidecar.
//!
//! Module map:
//! - [`spec`]: the serve grid (tenant counts × fleet sizes × `h_e` ×
//!   controller mode) around one map workload and one tenant base.
//! - [`controller`]: the deterministic SLO feedback controller stepping
//!   `h_e` per wavefront from observed misses and backlog.
//! - [`scheduler`]: the event-driven admission/EDF/batching loop over
//!   [`Fleet`](crescent_accel::Fleet), with the controller's
//!   observe → decide → act hook before each dispatch.
//! - [`ledger`]: per-tenant frame outcomes, nearest-rank percentiles,
//!   deadline and energy accounting, knob trajectories.
//! - [`report`]: schema-versioned JSON in the explorer's exact-diff
//!   house style.
//! - [`runner`]: the worker-pool executor.
//! - [`timings`]: the wall-clock sidecar (never in the report bytes).

#![warn(missing_docs)]

pub mod controller;
pub mod ledger;
pub mod report;
pub mod runner;
pub mod scheduler;
pub mod spec;
pub mod timings;

pub use controller::{h_e_in_effect, ControlMode, Controller, ControllerConfig};
pub use ledger::{
    deadline_missed, digest_results, percentile, FrameOutcome, InstanceReport, KnobPoint,
    ServiceLedger, TenantLedger,
};
pub use report::{serve_fingerprint, ServeReport, ServeRow, TenantRow, SCHEMA};
pub use runner::{
    default_workers, run_serve, run_serve_timed, run_serve_with_stats, ServeRunStats,
};
pub use scheduler::{
    run_service, run_service_controlled, MaintenanceCost, ServiceContext, ServiceOutcome,
};
pub use spec::{ServePoint, ServeSpec};
pub use timings::{ServeTimings, TIMINGS_SCHEMA};
