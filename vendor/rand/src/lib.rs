//! Offline stub of `rand` 0.9.
//!
//! The build container has no crates.io access, so this crate provides
//! the slice of the rand 0.9 API the workspace uses: `SeedableRng` /
//! `seed_from_u64`, `rngs::StdRng`, and the `Rng` extension methods
//! `random`, `random_range`, and `random_bool`. `StdRng` here is
//! xoshiro256++ seeded through SplitMix64 — deterministic, seedable, and
//! statistically solid for the simulator's synthetic datasets — but it is
//! NOT the ChaCha12 generator real rand ships, so seed-for-seed streams
//! differ from upstream rand. All workspace tests pin their own seeds and
//! assert distribution-free properties, so this is safe; revisit if a
//! test ever hard-codes expected sample values.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same scheme upstream rand documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable from the uniform "standard" distribution
/// (`Rng::random`): `[0, 1)` for floats, full range for integers.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let unit = <$t as StandardUniform>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // `start + unit*(end-start)` can round up to exactly `end`
                // even though unit < 1; keep the interval half-open.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let unit = <$t as StandardUniform>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as StandardUniform>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++ in this stub;
    /// upstream rand uses ChaCha12 — streams differ seed-for-seed).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 0xAEF1_7502_B3DE_23AD, 1];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u32> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.random()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u32> = (0..8).map(|_| c.random()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn integer_ranges_hit_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
