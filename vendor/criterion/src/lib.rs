//! Offline stub of `criterion`.
//!
//! The build container has no crates.io access, so this crate provides a
//! minimal, API-compatible timing harness for the workspace's four bench
//! targets: `Criterion::{default, sample_size, benchmark_group,
//! bench_function}`, groups with `bench_function` / `bench_with_input` /
//! `finish`, `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. It times `sample_size` measured iterations
//! after one warm-up and prints median/mean per benchmark — enough to
//! compare hot paths locally. It produces no HTML reports, statistics, or
//! baseline comparisons; swap in real criterion for publication-grade
//! numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness state.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in this stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` iterations of `routine` after one warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { sample_size, samples: Vec::new() };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples; closure never called iter)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label:<50} median {:>12} mean {:>12} ({} samples)",
        format_duration(median),
        format_duration(mean),
        bencher.samples.len(),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            // cargo bench forwards harness flags (e.g. --bench); this
            // stub has no filtering, so arguments are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0usize;
        c.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        // one warm-up + five measured iterations
        assert_eq!(calls, 6);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("abc").0, "abc");
    }
}
