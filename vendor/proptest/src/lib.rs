//! Offline stub of `proptest`.
//!
//! The build container has no crates.io access, so this crate implements
//! the slice of proptest the workspace uses: range and tuple strategies,
//! `prop::collection::vec`, `.prop_map`, `ProptestConfig::with_cases`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case panics with its case number; cases
//!   are deterministic per test (seeded from the test name), so failures
//!   reproduce exactly on re-run.
//! - **No persistence.** Nothing is written to `proptest-regressions/`.

/// Runner configuration. Only `cases` is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! Deterministic RNG driving case generation.

    /// SplitMix64 generator; seeded from the test's name so every test
    /// has an independent, stable stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label: stable across runs and platforms.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "empty range");
            self.next_u64() % span
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                    // the cast and the fma-less sum can both round up to
                    // exactly `end`; keep the interval half-open
                    if v >= self.end {
                        self.end.next_down().max(self.start)
                    } else {
                        v
                    }
                }
            }
        )*};
    }
    impl_strategy_float_range!(f32, f64);

    macro_rules! impl_strategy_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_strategy_tuple!(A);
    impl_strategy_tuple!(A, B);
    impl_strategy_tuple!(A, B, C);
    impl_strategy_tuple!(A, B, C, D);
    impl_strategy_tuple!(A, B, C, D, E);
    impl_strategy_tuple!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with `len` in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `prop::` namespace, as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Everything a `proptest!` test file needs.

    pub use crate::strategy::Strategy;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Runs `cases` deterministic cases of `body` (used by `proptest!`).
pub fn run_cases<F: FnMut(&mut test_runner::TestRng, u32)>(
    name: &str,
    config: ProptestConfig,
    mut body: F,
) {
    let mut rng = test_runner::TestRng::deterministic(name);
    for case in 0..config.cases {
        body(&mut rng, case);
    }
}

/// Asserts a condition inside a `proptest!` case (panics on failure; this
/// stub does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: `fn name(binding in strategy, ...) { body }`.
///
/// Each test runs `config.cases` deterministic cases (seeded from the
/// test's name); a failing case panics immediately without shrinking.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($args:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), $cfg, |__rng, __case| {
                let __run = || {
                    $crate::__proptest_bind! { __rng, ($($args)*), $body }
                };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest stub: {} failed at case {} (deterministic; re-run reproduces it)",
                        stringify!($name), __case
                    );
                    ::std::panic::resume_unwind(panic);
                }
            });
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds `pat in strategy` args.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( $rng:ident, (), $body:block ) => { $body };
    ( $rng:ident, ($arg:pat in $($rest:tt)*), $body:block ) => {
        $crate::__proptest_strat! { $rng, $arg, (), ($($rest)*), $body }
    };
}

/// Implementation detail of [`proptest!`]: munches one strategy expr
/// (everything up to a top-level comma), binds it, and recurses.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_strat {
    ( $rng:ident, $arg:pat, ($($strat:tt)*), (), $body:block ) => {{
        let $arg = $crate::strategy::Strategy::new_value(&($($strat)*), $rng);
        $crate::__proptest_bind! { $rng, (), $body }
    }};
    ( $rng:ident, $arg:pat, ($($strat:tt)*), (, $($rest:tt)*), $body:block ) => {{
        let $arg = $crate::strategy::Strategy::new_value(&($($strat)*), $rng);
        $crate::__proptest_bind! { $rng, ($($rest)*), $body }
    }};
    ( $rng:ident, $arg:pat, ($($strat:tt)*), ($next:tt $($rest:tt)*), $body:block ) => {
        $crate::__proptest_strat! { $rng, $arg, ($($strat)* $next), ($($rest)*), $body }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Vec strategy respects its size range.
        #[test]
        fn vec_len_in_range(v in prop::collection::vec(0usize..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        /// Tuple + map strategies compose.
        #[test]
        fn tuple_and_map(s in (0u64..5, 10u64..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..25).contains(&s));
        }

        /// Multiple args, no trailing comma.
        #[test]
        fn multi_args(a in 0i32..4, b in -3.0f32..3.0) {
            prop_assert!((0..4).contains(&a));
            prop_assert!((-3.0..3.0).contains(&b));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        super::run_cases("det", ProptestConfig::with_cases(8), |rng, _| {
            first.push(rng.next_u64());
        });
        let mut second = Vec::new();
        super::run_cases("det", ProptestConfig::with_cases(8), |rng, _| {
            second.push(rng.next_u64());
        });
        assert_eq!(first, second);
    }
}
