//! Offline stub of `serde`.
//!
//! The build container has no crates.io access, and nothing in this
//! workspace actually serializes (no `serde_json`/`bincode` in the tree)
//! — the `#[derive(Serialize, Deserialize)]` attributes only document
//! which types are wire-ready. These marker traits keep those derives
//! compiling; swap this stub for the real crate by pointing the
//! workspace dependency back at the registry once networked builds are
//! available.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (the `'de` lifetime is
/// dropped — no code in this workspace names it).
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
