//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on report and config
//! structs but never serializes anything (there is no `serde_json` or
//! equivalent in the dependency tree), so the derives only need to emit
//! impls of the marker traits in the sibling `serde` stub. The container
//! this repo builds in has no crates.io access, hence no `syn`/`quote`;
//! the input is parsed by hand, which is enough for the plain structs and
//! enums this workspace defines.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// Emits `impl ::serde::<Trait> for <Type> {}` for the derived item.
///
/// Supports non-generic `struct`/`enum` items (all this workspace has).
/// A generic item panics at macro-expansion time with a clear message
/// rather than emitting broken code.
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut tokens = input.into_iter();
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => break name.to_string(),
                    other => panic!("serde stub derive: expected type name, got {other:?}"),
                }
            }
            Some(_) => continue,
            None => panic!("serde stub derive: no struct/enum found in input"),
        }
    };
    if let Some(TokenTree::Punct(p)) = tokens.next() {
        if p.as_char() == '<' {
            panic!(
                "serde stub derive: `{name}` is generic; teach vendor/serde_derive about generics"
            );
        }
    }
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl failed to parse")
}
